/**
 * @file
 * Montgomery modular multiplier built on the TBM datapath.
 *
 * FAST's NTTU replaces the basic multiplier inside its Montgomery
 * modular multipliers with the TBM (Sec. 5.2). This is the functional
 * model: REDC with R = 2^64, where every integer product is produced
 * by TBM base-multiplier firings — so tests can verify bit-exactness
 * AND audit the multiplier count per modular operation in each mode.
 */
#ifndef FAST_HW_MONTGOMERY_HPP
#define FAST_HW_MONTGOMERY_HPP

#include "core/tbm.hpp"

namespace fast::hw {

using math::u128;
using math::u64;

/**
 * Montgomery arithmetic context for one odd modulus q < 2^60.
 */
class MontgomeryMultiplier
{
  public:
    explicit MontgomeryMultiplier(u64 q);

    u64 modulus() const { return q_; }

    /** Map into Montgomery form: a * R mod q. */
    u64 toMont(u64 a) const;

    /** Map out of Montgomery form. */
    u64 fromMont(u64 a) const;

    /**
     * Montgomery product (a * b * R^-1 mod q) with all integer
     * multiplications executed on @p tbm in 60-bit mode.
     */
    u64 mulMont(u64 a, u64 b, core::TunableBitMultiplier &tbm) const;

    /**
     * Full modular multiply a * b mod q (wraps form conversion; the
     * NTT keeps operands in Montgomery form between butterflies).
     */
    u64 mulMod(u64 a, u64 b, core::TunableBitMultiplier &tbm) const;

  private:
    u64 redc(u128 t, core::TunableBitMultiplier &tbm) const;

    u64 q_;
    u64 q_inv_neg_;  ///< -q^-1 mod 2^64
    u64 r2_;         ///< R^2 mod q for form conversion
};

} // namespace fast::hw

#endif // FAST_HW_MONTGOMERY_HPP
