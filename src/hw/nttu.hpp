/**
 * @file
 * NTT Unit model (Sec. 5.2): a radix-2 pipelined ten-step NTT engine.
 *
 * The timing model follows the SHARP-style dataflow: each cluster
 * streams sqrt(N) elements per cycle through the butterfly pipeline
 * (2*sqrt(N) in 36-bit TBM mode), so one N-point limb costs about
 * N / (lanes * parallelism) cycles plus the pipeline depth. The
 * functional model implements the four-step NTT decomposition
 * (columns -> twiddle -> rows, the core of the ten-step method) and
 * is verified against the direct transform.
 */
#ifndef FAST_HW_NTTU_HPP
#define FAST_HW_NTTU_HPP

#include <cstddef>
#include <vector>

#include "hw/config.hpp"
#include "math/ntt.hpp"

namespace fast::hw {

/** Cycle/throughput model of one cluster's NTTU. */
class NttUnit
{
  public:
    explicit NttUnit(const FastConfig &config) : config_(config) {}

    /** Pipeline fill depth (butterfly + transpose + twist stages). */
    static constexpr std::size_t kPipelineDepth = 48;

    /**
     * Cycles for @p limbs transforms of degree @p n at the given
     * operand width, on one cluster. The dual-36 mode doubles
     * throughput only when two same-modulus polynomial streams can be
     * paired on one twiddle (Sec. 5.2); @p streams < 2 disables it.
     */
    double cycles(std::size_t n, std::size_t limbs, int bits,
                  std::size_t streams = 2) const;

    /** Modular multiplications performed (for utilization/energy). */
    double mults(std::size_t n, std::size_t limbs) const
    {
        return static_cast<double>(limbs) *
               math::NttTables::multCount(n);
    }

  private:
    FastConfig config_;
};

/**
 * Functional four-step NTT: N = n1 * n2, column transforms of size
 * n1, twiddle correction, row transforms of size n2. Operating on the
 * *cyclic* NTT core after the negacyclic pre-twist — exactly how the
 * ten-step hardware decomposes the problem. Returns the same output
 * as NttTables::forward.
 */
std::vector<math::u64> fourStepForwardNtt(const std::vector<math::u64> &in,
                                          std::size_t n1, std::size_t n2,
                                          math::u64 q);

/**
 * Functional ten-step NTT (Sec. 5.2): the four-step decomposition
 * applied recursively, mapping the N elements onto the paper's
 * sqrt(N) x N^(1/4) x N^(1/4) arrangement. Bit-exact with
 * NttTables::forward.
 */
std::vector<math::u64> tenStepForwardNtt(const std::vector<math::u64> &in,
                                         math::u64 q);

} // namespace fast::hw

#endif // FAST_HW_NTTU_HPP
