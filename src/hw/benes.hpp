/**
 * @file
 * Benes permutation network — the datapath of FAST's Automorphism
 * Unit (AutoU, Sec. 5.5).
 *
 * A 2N-input Benes network routes any permutation through
 * 2*log2(N)-1 stages of 2x2 switches. AutoU uses it to realize the
 * slot permutation of phi_r: i -> i*5^r mod N. This is a full
 * implementation of the looping route-computation algorithm plus a
 * stage-by-stage functional evaluator, so tests can verify that every
 * automorphism permutation is routable.
 */
#ifndef FAST_HW_BENES_HPP
#define FAST_HW_BENES_HPP

#include <cstddef>
#include <vector>

namespace fast::hw {

/**
 * A Benes network for a power-of-two number of terminals.
 */
class BenesNetwork
{
  public:
    /** @param size number of inputs (power of two, >= 2). */
    explicit BenesNetwork(std::size_t size);

    std::size_t size() const { return n_; }

    /** Number of switch stages: 2*log2(n) - 1. */
    std::size_t stageCount() const;

    /** Switches per stage: n/2. */
    std::size_t switchesPerStage() const { return n_ / 2; }

    /**
     * Compute switch settings routing output j to input perm[j].
     * @throws std::invalid_argument if perm is not a permutation.
     */
    void route(const std::vector<std::size_t> &perm);

    /** Apply the routed configuration to a data vector. */
    std::vector<std::size_t> apply(
        const std::vector<std::size_t> &data) const;

    /** The switch settings (stage-major); true = crossed. */
    const std::vector<std::vector<bool>> &settings() const
    {
        return settings_;
    }

  private:
    void routeRecursive(const std::vector<std::size_t> &perm,
                        std::size_t stage, std::size_t offset);

    std::size_t n_;
    int log_n_;
    std::vector<std::vector<bool>> settings_;  ///< [stage][switch]
};

/**
 * The permutation AutoU must route for the automorphism
 * i -> (i * galois) mod 2N with negacyclic sign handling folded into
 * the eval-domain index map (matches RnsPoly::automorphism).
 */
std::vector<std::size_t> automorphismPermutation(std::size_t n,
                                                 std::size_t galois);

} // namespace fast::hw

#endif // FAST_HW_BENES_HPP
