/**
 * @file
 * Accelerator configurations: FAST (Sec. 5) and the SHARP-style
 * comparison points used throughout the evaluation (Table 4).
 */
#ifndef FAST_HW_CONFIG_HPP
#define FAST_HW_CONFIG_HPP

#include <cstddef>
#include <string>

namespace fast::hw {

/**
 * Top-level accelerator configuration. FAST's default: 4 clusters of
 * 256 lanes at 1 GHz, 60-bit TBM datapath, 1 TB/s HBM, 281 MB of
 * on-chip memory with a reservation for evaluation keys.
 */
struct FastConfig {
    std::string name = "FAST";
    std::size_t clusters = 4;
    std::size_t lanes = 256;      ///< per cluster
    double freq_ghz = 1.0;
    int alu_bits = 60;            ///< native datapath width
    bool has_tbm = true;          ///< dual-36 mode available
    bool use_aether = true;       ///< per-level method selection
    bool use_hoisting = true;
    bool use_klss = true;
    bool use_min_ks = true;  ///< ARK minimum key-switching keys
    /**
     * Seed-expanded evk transfers: the AEM EKG regenerates the `a`
     * halves of every evaluation key from a PRNG seed, so HBM moves
     * the `b` halves plus a seed (~2x fewer evk bytes) and the chip
     * pays the regeneration compute ("evk-expand" kernel).
     */
    bool use_seed_evk = true;
    /**
     * Let Aether score CiFlow-style key-switch dataflow variants
     * (reordered / fused ModUp-KeyMult-ModDown) per site alongside
     * the hybrid/KLSS method choice.
     */
    bool use_dataflow = true;
    double hbm_bytes_per_s = 1e12;
    double onchip_mb = 281;
    double evk_reserve_mb = 200;  ///< key-storage reservation (Aether)

    /**
     * Modular multiplications per cycle across the chip for a kernel
     * of the given operand width: lanes x clusters, doubled in 36-bit
     * mode when the TBM is present (Sec. 5.2-5.4).
     */
    double modMultsPerCycle(int bits) const
    {
        double base = static_cast<double>(clusters) *
                      static_cast<double>(lanes);
        if (bits <= 36 && has_tbm)
            return 2.0 * base;
        if (bits > alu_bits) {
            // Composing wide products from narrow units costs 4 base
            // multipliers (Booth) — a 75% parallelism loss (Sec. 3.2).
            return base / 4.0;
        }
        return base;
    }

    /** Effective mod-mult throughput (ops/s) for Aether's estimates. */
    double opsPerSecond(int bits) const
    {
        return modMultsPerCycle(bits) * freq_ghz * 1e9;
    }

    /** @name Named configurations. */
    ///@{
    static FastConfig fast();
    /** FAST with the TBM removed (fixed 60-bit ALUs, no dual mode). */
    static FastConfig fastWithoutTbm();
    /** Plain 36-bit ALU accelerator (Fig. 12's final ablation). */
    static FastConfig alu36();
    /**
     * The Fig. 10 "OneKSW" baseline: the FAST chip running only the
     * hybrid method with full-level keys — no hoisting, no KLSS, no
     * Min-KS (those are the optimizations Aether-Hemera integrates).
     */
    static FastConfig oneKeySwitch();
    static FastConfig sharp();
    static FastConfig sharpLargeMem();
    static FastConfig sharp8Cluster();
    static FastConfig sharpLargeMem8Cluster();
    ///@}

    /** Scale the cluster count (Fig. 13b sensitivity). */
    FastConfig withClusters(std::size_t n) const;
    /** Scale the on-chip memory (Fig. 13a sensitivity). */
    FastConfig withMemoryMb(double mb) const;
};

} // namespace fast::hw

#endif // FAST_HW_CONFIG_HPP
