/**
 * @file
 * Implementation of Benes routing via the classic looping algorithm.
 */
#include "hw/benes.hpp"

#include <stdexcept>

namespace fast::hw {

namespace {

int
log2Exact(std::size_t n)
{
    int lg = 0;
    while ((std::size_t(1) << lg) < n)
        ++lg;
    if ((std::size_t(1) << lg) != n || n < 2)
        throw std::invalid_argument(
            "Benes network size must be a power of two >= 2");
    return lg;
}

} // namespace

BenesNetwork::BenesNetwork(std::size_t size) : n_(size)
{
    log_n_ = log2Exact(size);
    settings_.assign(stageCount(),
                     std::vector<bool>(switchesPerStage(), false));
}

std::size_t
BenesNetwork::stageCount() const
{
    return 2 * static_cast<std::size_t>(log_n_) - 1;
}

namespace {

/**
 * Recursive router. perm maps output j -> input perm[j] within this
 * subnetwork. `stage` is the global stage of this subnetwork's input
 * column, `offset` the global index of its first switch in every
 * column it occupies, and `set` the global settings table.
 */
void
routeRec(const std::vector<std::size_t> &perm, std::size_t stage,
         std::size_t offset, std::vector<std::vector<bool>> &set,
         std::size_t total_stages)
{
    std::size_t n = perm.size();
    if (n == 2) {
        // A single 2x2 switch in the middle column.
        set[stage][offset] = perm[0] == 1;
        return;
    }
    std::size_t half = n / 2;
    std::size_t out_stage = total_stages - 1 - stage;

    // inverse permutation: input i -> output position.
    std::vector<std::size_t> inv(n);
    for (std::size_t j = 0; j < n; ++j)
        inv[perm[j]] = j;

    std::vector<int> in_cross(half, -1);   // -1 undecided, 0/1 set
    std::vector<int> out_cross(half, -1);
    std::vector<std::size_t> top(half), bottom(half);

    // Looping algorithm: alternate output/input constraints around
    // each cycle. An output switch routes straight as top -> 2t,
    // bottom -> 2t+1; an input switch routes straight as 2s -> top,
    // 2s+1 -> bottom.
    for (std::size_t seed = 0; seed < half; ++seed) {
        if (out_cross[seed] != -1)
            continue;
        std::size_t j = 2 * seed;  // start at the even output terminal
        bool via_top = true;       // arbitrary seed choice
        out_cross[seed] = 0;
        while (true) {
            std::size_t t = j / 2;
            // Record the subnet terminal: position t of this subnet
            // is fed from input-switch position perm[j]/2.
            std::size_t i = perm[j];
            std::size_t s = i / 2;
            (via_top ? top : bottom)[t] = s;
            // Set the input switch to steer input i to this subnet.
            int need_in = via_top ? (i % 2 == 1) : (i % 2 == 0);
            if (in_cross[s] != -1)
                break;  // cycle closed at an input switch
            in_cross[s] = need_in;
            // The partner input is forced to the other subnet.
            std::size_t i2 = i ^ 1;
            via_top = !via_top;
            std::size_t j2 = inv[i2];
            std::size_t t2 = j2 / 2;
            (via_top ? top : bottom)[t2] = i2 / 2;
            int need_out = via_top ? (j2 % 2 == 1) : (j2 % 2 == 0);
            if (out_cross[t2] != -1)
                break;  // cycle closed at an output switch
            out_cross[t2] = need_out;
            // Continue from the other terminal of output switch t2.
            j = j2 ^ 1;
            via_top = !via_top;
        }
    }

    for (std::size_t s = 0; s < half; ++s) {
        set[stage][offset + s] = in_cross[s] == 1;
        set[out_stage][offset + s] = out_cross[s] == 1;
    }
    routeRec(top, stage + 1, offset, set, total_stages);
    routeRec(bottom, stage + 1, offset + half / 2, set, total_stages);
}

} // namespace

void
BenesNetwork::route(const std::vector<std::size_t> &perm)
{
    if (perm.size() != n_)
        throw std::invalid_argument("permutation size mismatch");
    std::vector<bool> seen(n_, false);
    for (std::size_t v : perm) {
        if (v >= n_ || seen[v])
            throw std::invalid_argument("not a permutation");
        seen[v] = true;
    }
    for (auto &stage : settings_)
        stage.assign(switchesPerStage(), false);
    routeRec(perm, 0, 0, settings_, stageCount());
}

std::vector<std::size_t>
BenesNetwork::apply(const std::vector<std::size_t> &data) const
{
    if (data.size() != n_)
        throw std::invalid_argument("data size mismatch");
    // Evaluate stage by stage. The network has a butterfly topology:
    // at recursion depth d, switch groups span n/2^d terminals and a
    // switch connects partner wires within its group.
    std::vector<std::size_t> wires = data;
    std::size_t stages = stageCount();
    auto applyStage = [&](std::size_t stage) {
        // Depth of the recursion this stage belongs to.
        std::size_t depth =
            stage < static_cast<std::size_t>(log_n_)
                ? stage
                : stages - 1 - stage;
        std::size_t group = n_ >> depth;       // terminals per subnet
        std::size_t half = group / 2;
        std::vector<std::size_t> next(n_);
        for (std::size_t g = 0; g < n_ / group; ++g) {
            std::size_t base = g * group;
            std::size_t sw_base = g * half;
            for (std::size_t s = 0; s < half; ++s) {
                bool crossed = settings_[stage][sw_base + s];
                // Input side (first log_n stages): wires 2s, 2s+1 of
                // the group map to top[s], bottom[s].
                std::size_t a = base + 2 * s;
                std::size_t b = base + 2 * s + 1;
                std::size_t to_top = base + s;
                std::size_t to_bottom = base + half + s;
                if (stage < static_cast<std::size_t>(log_n_) - 0 &&
                    stage != stages - 1 - depth) {
                    // entering subnetworks
                    next[to_top] = crossed ? wires[b] : wires[a];
                    next[to_bottom] = crossed ? wires[a] : wires[b];
                } else {
                    // leaving subnetworks
                    next[a] = crossed ? wires[to_bottom]
                                      : wires[to_top];
                    next[b] = crossed ? wires[to_top]
                                      : wires[to_bottom];
                }
            }
        }
        wires = std::move(next);
    };
    for (std::size_t stage = 0; stage < stages; ++stage)
        applyStage(stage);
    return wires;
}

std::vector<std::size_t>
automorphismPermutation(std::size_t n, std::size_t galois)
{
    // Matches RnsPoly::automorphism in eval form: out[k] = in[k']
    // with 2*br(k')+1 = (2*br(k)+1)*g mod 2N.
    int lg = log2Exact(n);
    auto bit_reverse = [lg](std::size_t x) {
        std::size_t r = 0;
        for (int i = 0; i < lg; ++i) {
            r = (r << 1) | (x & 1);
            x >>= 1;
        }
        return r;
    };
    std::size_t two_n = 2 * n;
    std::vector<std::size_t> perm(n);
    for (std::size_t k = 0; k < n; ++k) {
        std::size_t e = 2 * bit_reverse(k) + 1;
        std::size_t src_e = (e * galois) % two_n;
        perm[k] = bit_reverse((src_e - 1) / 2);
    }
    return perm;
}

} // namespace fast::hw
