/**
 * @file
 * Implementation of the online planning session.
 */
#include "core/planner_session.hpp"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <utility>

#include "obs/registry.hpp"
#include "obs/trace.hpp"

namespace fast::core {

namespace {

/** Signal movement that forces the delay-lean candidates to
 *  regenerate (smaller drifts re-measure the existing set). */
constexpr double kRegenerateThreshold = 0.1;

} // namespace

const char *
toString(PlannerMode mode)
{
    switch (mode) {
      case PlannerMode::off: return "off";
      case PlannerMode::offline: return "offline";
      case PlannerMode::online: return "online";
    }
    return "unknown";
}

Status
PlannerOptions::validate() const
{
    if (window_ns <= 0)
        return Status::error(StatusCode::invalid_argument,
                             "planner: window_ns must be positive");
    if (ema_alpha <= 0 || ema_alpha > 1)
        return Status::error(StatusCode::invalid_argument,
                             "planner: ema_alpha must be in (0, 1]");
    if (hysteresis < 0)
        return Status::error(StatusCode::invalid_argument,
                             "planner: hysteresis must be >= 0");
    if (replan_charge_ns < 0)
        return Status::error(StatusCode::invalid_argument,
                             "planner: replan_charge_ns must be >= 0");
    return Status::ok();
}

PlannerSession::PlannerSession(Aether aether, PlannerOptions options)
    : aether_(std::move(aether)), options_(options)
{
}

PlannerSession::WorkloadState &
PlannerSession::stateFor(const trace::OpStream &stream)
{
    auto it = workloads_.find(stream.name);
    if (it != workloads_.end())
        return it->second;

    // First sight of this workload: build its MCT once and start on
    // the offline selection — exactly what a static deployment would
    // serve.
    WorkloadState &state = workloads_[stream.name];
    state.mct = aether_.analyze(stream);
    state.current = internConfig(state, aether_.select(state.mct));
    return state;
}

const AetherConfig *
PlannerSession::internConfig(WorkloadState &state, AetherConfig config)
{
    std::string key = config.serialize();
    auto it = state.candidate_keys.find(key);
    if (it != state.candidate_keys.end())
        return it->second;
    state.candidates.push_back(std::move(config));
    const AetherConfig *interned = &state.candidates.back();
    state.candidate_keys.emplace(std::move(key), interned);
    return interned;
}

void
PlannerSession::generateCandidates(WorkloadState &state)
{
    // The churn pessimist assumes no modeled key reuse materializes —
    // a serving mix that interleaves workloads evicts keys before
    // their next use. Signal-independent, so generated once.
    ObservedCosts churn;
    churn.reuse_scale = 0.0;
    internConfig(state, aether_.select(state.mct, churn));

    // The delay-lean pair re-scores transfers against what the
    // session actually observed: cold fraction weights the transfer
    // term (warm batch members move no evk bytes), the Hemera hit
    // rate stands in for realized reuse, and ties stop favoring
    // smaller keys. Regenerated only when the signals move.
    if (state.gen_cold_fraction >= 0 &&
        std::abs(state.ema_cold_fraction - state.gen_cold_fraction) <=
            kRegenerateThreshold &&
        std::abs(state.ema_evk_hit_rate - state.gen_evk_hit_rate) <=
            kRegenerateThreshold)
        return;
    ObservedCosts lean;
    lean.transfer_weight = state.ema_cold_fraction;
    lean.reuse_scale = state.ema_evk_hit_rate;
    lean.tie_tolerance = 0.0;
    internConfig(state, aether_.select(state.mct, lean));
    lean.allow_klss = false;
    internConfig(state, aether_.select(state.mct, lean));
    state.gen_cold_fraction = state.ema_cold_fraction;
    state.gen_evk_hit_rate = state.ema_evk_hit_rate;
}

std::size_t
PlannerSession::measureCandidates(WorkloadState &state,
                                  const MeasureFn &measure)
{
    std::size_t priced = 0;
    if (!measure)
        return priced;
    for (const AetherConfig &candidate : state.candidates) {
        if (state.measured.count(&candidate))
            continue;
        ++measurements_;
        FAST_OBS_COUNT("planner.measurements", 1);
        if (auto cost = measure(candidate)) {
            state.measured.emplace(&candidate, *cost);
            ++priced;
        }
    }
    return priced;
}

const AetherConfig *
PlannerSession::retune(WorkloadState &state, const MeasureFn &measure)
{
    generateCandidates(state);
    measureCandidates(state, measure);

    auto incumbent = state.measured.find(state.current);
    if (incumbent == state.measured.end())
        return nullptr;  // no basis for comparison this round

    // Price every measured candidate under the observed cold/warm
    // mix. The incumbent competes too, so a static config that is
    // genuinely best simply keeps winning.
    double f = state.ema_cold_fraction;
    auto score = [f](const CandidateCost &c) {
        return f * c.cold_ns + (1.0 - f) * c.warm_ns;
    };
    // Iterate in candidate (generation) order, never in measured-map
    // order: the map is keyed by pointer, and address order is not a
    // replay-stable tie break. Strict `<` keeps the earliest
    // generated candidate on ties.
    const AetherConfig *best = state.current;
    double best_score = score(incumbent->second);
    for (const AetherConfig &candidate : state.candidates) {
        auto it = state.measured.find(&candidate);
        if (it == state.measured.end())
            continue;
        double s = score(it->second);
        if (s < best_score) {
            best = &candidate;
            best_score = s;
        }
    }
    if (best == state.current)
        return nullptr;
    // Hysteresis: a challenger must beat the incumbent by a clear
    // margin or the session flaps between near-equals.
    if (best_score >= score(incumbent->second) *
                          (1.0 - options_.hysteresis))
        return nullptr;

    const AetherConfig *superseded = state.current;
    state.current = best;
    ++state.epoch;
    ++state.replans;
    ++replans_;
    FAST_OBS_COUNT("planner.replans", 1);
    FAST_OBS_GAUGE_SET("planner.epoch",
                       static_cast<std::int64_t>(state.epoch));
    return superseded;
}

PlannerSession::PlanRef
PlannerSession::planFor(const trace::OpStream &stream, double now_ns,
                        const MeasureFn &measure)
{
    (void)now_ns;  // windows close in observeBatch; kept for symmetry
    FAST_OBS_SPAN_VAR(span, "planner.plan_for");
    WorkloadState &state = stateFor(stream);

    PlanRef ref;
    if (options_.mode == PlannerMode::online && state.retune_pending &&
        state.replans < options_.max_replans) {
        state.retune_pending = false;
        if (const AetherConfig *superseded = retune(state, measure)) {
            ref.superseded = superseded;
            ref.charge_ns = options_.replan_charge_ns;
            charged_ns_ += options_.replan_charge_ns;
        }
    }
    ref.config = state.current;
    ref.epoch = state.epoch;
    return ref;
}

void
PlannerSession::observeBatch(const std::string &workload, double now_ns,
                             std::size_t requests,
                             std::size_t cold_requests,
                             std::size_t queue_depth,
                             double evk_hit_rate)
{
    if (!observing())
        return;
    auto it = workloads_.find(workload);
    if (it == workloads_.end())
        return;  // never planned: nothing to retune
    WorkloadState &state = it->second;

    if (state.window_start_ns < 0)
        state.window_start_ns = now_ns;
    state.window_requests += requests;
    state.window_cold += cold_requests;
    state.window_queue_peak =
        std::max(state.window_queue_peak, queue_depth);
    state.window_hit_rate_sum += evk_hit_rate;
    ++state.window_batches;

    if (now_ns - state.window_start_ns < options_.window_ns ||
        state.window_requests < options_.min_window_requests)
        return;

    // Close the window: fold its signals into the EMAs and arm a
    // retune for the workload's next dispatch.
    double cold_fraction =
        static_cast<double>(state.window_cold) /
        static_cast<double>(state.window_requests);
    double hit_rate =
        state.window_hit_rate_sum /
        static_cast<double>(std::max<std::size_t>(1,
                                                  state.window_batches));
    if (!state.ema_valid) {
        state.ema_cold_fraction = cold_fraction;
        state.ema_evk_hit_rate = hit_rate;
        state.ema_valid = true;
    } else {
        state.ema_cold_fraction =
            options_.ema_alpha * cold_fraction +
            (1.0 - options_.ema_alpha) * state.ema_cold_fraction;
        state.ema_evk_hit_rate =
            options_.ema_alpha * hit_rate +
            (1.0 - options_.ema_alpha) * state.ema_evk_hit_rate;
    }
    last_cold_fraction_ = state.ema_cold_fraction;
    last_evk_hit_rate_ = state.ema_evk_hit_rate;
    ++windows_;
    FAST_OBS_COUNT("planner.windows", 1);
    state.retune_pending = true;

    state.window_start_ns = now_ns;
    state.window_requests = 0;
    state.window_cold = 0;
    state.window_queue_peak = 0;
    state.window_hit_rate_sum = 0;
    state.window_batches = 0;
}

std::size_t
PlannerSession::epochOf(const std::string &workload) const
{
    auto it = workloads_.find(workload);
    return it == workloads_.end() ? 0 : it->second.epoch;
}

const AetherConfig *
PlannerSession::currentConfigOf(const std::string &workload) const
{
    auto it = workloads_.find(workload);
    return it == workloads_.end() ? nullptr : it->second.current;
}

PlannerStats
PlannerSession::stats() const
{
    PlannerStats s;
    s.mode = options_.mode;
    s.workloads = workloads_.size();
    s.windows = windows_;
    s.measurements = measurements_;
    s.replans = replans_;
    s.replan_charge_ns = charged_ns_;
    s.last_cold_fraction = last_cold_fraction_;
    s.last_evk_hit_rate = last_evk_hit_rate_;
    return s;
}

} // namespace fast::core
