/**
 * @file
 * Implementation of the Aether decision tool.
 */
#include "core/aether.hpp"

#include <algorithm>
#include <deque>
#include <map>
#include <set>
#include <sstream>
#include <stdexcept>

#include "obs/trace.hpp"

namespace fast::core {

namespace {

char
dataflowChar(ckks::KeySwitchDataflow dataflow)
{
    switch (dataflow) {
      case ckks::KeySwitchDataflow::standard: return 'S';
      case ckks::KeySwitchDataflow::reordered: return 'R';
      case ckks::KeySwitchDataflow::fused: return 'F';
    }
    return 'S';
}

ckks::KeySwitchDataflow
dataflowFromChar(char c)
{
    switch (c) {
      case 'R': return ckks::KeySwitchDataflow::reordered;
      case 'F': return ckks::KeySwitchDataflow::fused;
      default: return ckks::KeySwitchDataflow::standard;
    }
}

} // namespace

std::string
AetherConfig::serialize() const
{
    // v2 adds the per-site dataflow column: op ct level H|K S|R|F h.
    std::ostringstream out;
    out << "aether-config v2\n";
    for (const auto &d : decisions) {
        out << d.op_index << ' ' << d.ct_index << ' ' << d.level << ' '
            << (d.method == KeySwitchMethod::hybrid ? 'H' : 'K') << ' '
            << dataflowChar(d.dataflow) << ' ' << d.hoist << '\n';
    }
    return out.str();
}

AetherConfig
AetherConfig::deserialize(const std::string &text)
{
    std::istringstream in(text);
    std::string header;
    std::getline(in, header);
    bool v1 = header == "aether-config v1";
    if (!v1 && header != "aether-config v2")
        throw std::invalid_argument("bad Aether configuration header");
    AetherConfig config;
    AetherDecision d;
    char method = 0;
    if (v1) {
        // v1 files carry no dataflow column: every site is standard.
        while (in >> d.op_index >> d.ct_index >> d.level >> method >>
               d.hoist) {
            d.method = method == 'H' ? KeySwitchMethod::hybrid
                                     : KeySwitchMethod::klss;
            d.dataflow = ckks::KeySwitchDataflow::standard;
            config.decisions.push_back(d);
        }
        return config;
    }
    char dataflow = 0;
    while (in >> d.op_index >> d.ct_index >> d.level >> method >>
           dataflow >> d.hoist) {
        d.method = method == 'H' ? KeySwitchMethod::hybrid
                                 : KeySwitchMethod::klss;
        d.dataflow = dataflowFromChar(dataflow);
        config.decisions.push_back(d);
    }
    return config;
}

AetherDecision
AetherConfig::decisionFor(std::size_t op_index) const
{
    for (const auto &d : decisions)
        if (d.op_index == op_index)
            return d;
    AetherDecision fallback;
    fallback.op_index = op_index;
    return fallback;
}

double
AetherConfig::klssShare() const
{
    if (decisions.empty())
        return 0;
    double klss = 0;
    for (const auto &d : decisions)
        klss += d.method == KeySwitchMethod::klss ? 1 : 0;
    return klss / static_cast<double>(decisions.size());
}

Aether::Aether(cost::KeySwitchCostModel model, Settings settings)
    : model_(model), ss_model_(model), worksets_(model),
      settings_(settings)
{
}

MctCandidate
Aether::makeCandidate(const ckks::KeySwitchVariant &variant,
                      std::size_t ell, std::size_t hoist,
                      std::size_t site_rotations) const
{
    KeySwitchMethod method = variant.method;
    MctCandidate c;
    c.method = method;
    c.dataflow = variant.dataflow;
    c.hoist = hoist;
    if (hoist > 1) {
        // One decomposition shared by all rotations at the site. The
        // decomposed digits stay resident while the rotations' evks
        // stream through one at a time (Fig. 3b's working set).
        c.cost_ops = model_.keySwitch(variant, ell, hoist).total();
        c.key_bytes = model_.digitsBytes(method, ell) +
                      model_.evkBytes(method, ell);
    } else {
        // Sequential execution: repeat the full key switch. Min-KS
        // (hybrid only: KLSS digits need full-level keys) keeps both
        // the resident set and the HBM traffic small.
        c.cost_ops = static_cast<double>(site_rotations) *
                     model_.keySwitch(variant, ell, 1).total();
        c.key_bytes = method == KeySwitchMethod::hybrid
                          ? model_.evkBytesMinKs(method)
                          : model_.evkBytes(method, ell);
    }
    if (settings_.variant_delay_estimator) {
        c.delay_s =
            hoist > 1
                ? settings_.variant_delay_estimator(variant, ell, hoist)
                : static_cast<double>(site_rotations) *
                      settings_.variant_delay_estimator(variant, ell, 1);
    } else {
        c.delay_s = c.cost_ops / settings_.ops_per_s;
    }
    bool min_ks = hoist == 1 && method == KeySwitchMethod::hybrid;
    double per_key = min_ks ? model_.evkBytesMinKs(method)
                            : model_.evkBytes(method, ell);
    c.transfer_s = static_cast<double>(site_rotations) * per_key /
                   settings_.hbm_bytes_per_s;
    return c;
}

MctCandidate
Aether::makeConversionCandidate(const ckks::KeySwitchVariant &variant,
                                std::size_t ell, std::size_t rotations,
                                bool to_binary) const
{
    auto dir = to_binary ? cost::ConversionDirection::to_binary
                         : cost::ConversionDirection::to_ckks;
    MctCandidate c;
    c.method = variant.method;
    c.dataflow = variant.dataflow;
    c.hoist = rotations;
    c.cost_ops =
        ss_model_.conversion(dir, variant, ell, rotations).total();
    // Digits stay resident across the extraction/repack rotations
    // exactly as for a hoisted site; the conversion key replaces the
    // rotation evk.
    c.key_bytes =
        model_.digitsBytes(variant.method, ell) +
        ss_model_.conversionKeyBytes(dir, variant.method, ell);
    if (settings_.variant_delay_estimator) {
        // The estimator covers the hoisted key-switch share; the
        // conversion extras ride on the generic ops/s scale.
        c.delay_s =
            settings_.variant_delay_estimator(variant, ell, rotations) +
            ss_model_.conversionExtras(dir, ell, rotations).total() /
                settings_.ops_per_s;
    } else {
        c.delay_s = c.cost_ops / settings_.ops_per_s;
    }
    c.transfer_s =
        ss_model_.conversionKeyBytes(dir, variant.method, ell) /
        settings_.hbm_bytes_per_s;
    return c;
}

std::vector<MctEntry>
Aether::analyze(const trace::OpStream &stream) const
{
    FAST_OBS_SPAN_VAR(span, "aether.analyze");
    FAST_OBS_SPAN_ARG(span, "ops",
                      static_cast<std::uint64_t>(stream.ops.size()));
    std::vector<MctEntry> mct;
    std::size_t processed_group = 0;  // current hoist group id

    for (std::size_t i = 0; i < stream.ops.size(); ++i) {
        const auto &op = stream.ops[i];
        if (!op.needsKeySwitch())
            continue;

        MctEntry entry;
        entry.op_index = i;
        entry.ct_index = op.ct_index;
        entry.level = op.level;
        entry.is_rotation = op.kind == trace::FheOpKind::hrot;

        // Candidates: method x dataflow x hoisting. Standard dataflow
        // is pushed first per method so STEP-3's smaller-key tie break
        // keeps the textbook pipeline unless a CiFlow variant wins by
        // more than the tolerance.
        std::vector<ckks::KeySwitchDataflow> dataflows = {
            ckks::KeySwitchDataflow::standard};
        if (settings_.allow_dataflow) {
            dataflows.push_back(ckks::KeySwitchDataflow::reordered);
            dataflows.push_back(ckks::KeySwitchDataflow::fused);
        }
        std::vector<KeySwitchMethod> methods = {KeySwitchMethod::hybrid};
        if (settings_.allow_klss)
            methods.push_back(KeySwitchMethod::klss);

        if (trace::isSchemeSwitch(op.kind)) {
            // A conversion is one trace op whose hoist_size carries
            // its extraction/repack rotation count; the pipeline
            // shares one decomposition by construction, so only the
            // hoisted configuration is a candidate.
            entry.is_conversion = true;
            entry.to_binary = op.kind == trace::FheOpKind::ckks_to_bin;
            entry.times = std::max<std::size_t>(1, op.hoist_size);
            entry.key_ids.push_back(entry.to_binary ? -3 : -4);
            for (KeySwitchMethod m : methods)
                for (auto df : dataflows)
                    entry.candidates.push_back(makeConversionCandidate(
                        ckks::KeySwitchVariant::of(m, df), entry.level,
                        entry.times, entry.to_binary));
            mct.push_back(std::move(entry));
            continue;
        }

        if (op.hoist_group != 0) {
            if (op.hoist_group == processed_group)
                continue;  // rest of an already-analyzed group
            processed_group = op.hoist_group;
            entry.times = op.hoist_size;
            for (std::size_t r = 0; r < op.hoist_size &&
                                    i + r < stream.ops.size();
                 ++r)
                entry.key_ids.push_back(stream.ops[i + r].rot_steps);
        } else {
            entry.times = 1;
            entry.key_ids.push_back(
                entry.is_rotation
                    ? op.rot_steps
                    : (op.kind == trace::FheOpKind::hmult ? -1 : -2));
        }

        for (KeySwitchMethod m : methods)
            for (auto df : dataflows)
                entry.candidates.push_back(
                    makeCandidate(ckks::KeySwitchVariant::of(m, df),
                                  entry.level, 1, entry.times));
        if (entry.times > 1 && settings_.allow_hoisting) {
            for (KeySwitchMethod m : methods)
                for (auto df : dataflows)
                    entry.candidates.push_back(makeCandidate(
                        ckks::KeySwitchVariant::of(m, df), entry.level,
                        entry.times, entry.times));
        }
        mct.push_back(std::move(entry));
    }
    FAST_OBS_COUNT("aether.mct_entries",
                   static_cast<std::uint64_t>(mct.size()));
    return mct;
}

std::map<int, std::vector<std::size_t>>
Aether::keyUseSites(const std::vector<MctEntry> &mct)
{
    std::map<int, std::vector<std::size_t>> sites;
    for (std::size_t i = 0; i < mct.size(); ++i)
        for (int id : mct[i].key_ids)
            sites[id].push_back(i);
    return sites;
}

AetherConfig
Aether::select(const std::vector<MctEntry> &mct) const
{
    return select(mct, ObservedCosts{});
}

AetherConfig
Aether::select(const std::vector<MctEntry> &mct,
               const ObservedCosts &observed) const
{
    FAST_OBS_SPAN_VAR(span, "aether.select");
    FAST_OBS_SPAN_ARG(span, "entries",
                      static_cast<std::uint64_t>(mct.size()));
    AetherConfig config;
    auto use_sites = keyUseSites(mct);
    double tie_tol = observed.tie_tolerance < 0
                         ? settings_.tie_tolerance
                         : observed.tie_tolerance;
    // STEP-2 bandwidth budget: the HBM channel can hide transfers as
    // long as cumulative evk traffic stays under a multiple of the
    // cumulative key-switch execution time (element-wise operations
    // between the sites add roughly half again as much compute for
    // transfers to hide behind).
    constexpr double kHbmBudget = 1.5;
    double committed_delay_s = 0;
    double committed_transfer_s = 0;
    // A fetched key only amortizes over FUTURE uses close enough in
    // the schedule to still find it resident; distant reuses will
    // have been evicted by the intervening working set.
    constexpr std::size_t kLocalityWindow = 32;
    auto localUses = [&](int id, std::size_t mct_index) {
        std::size_t count = 0;
        for (std::size_t s : use_sites.at(id))
            if (s >= mct_index && s <= mct_index + kLocalityWindow)
                ++count;
        return std::max<std::size_t>(1, count);
    };
    // Distinct keys competing for residency just ahead of an index.
    auto distinctKeysInWindow = [&](std::size_t mct_index) {
        std::set<int> ids;
        std::size_t hi = std::min(mct.size() - 1,
                                  mct_index + kLocalityWindow);
        for (std::size_t i = mct_index; i <= hi; ++i)
            for (int id : mct[i].key_ids)
                ids.insert(id);
        return ids.size();
    };
    // Bytes of each evk already resident on chip (key id -> bytes),
    // modeling Hemera's pool reuse across sites.
    std::map<std::pair<int, KeySwitchMethod>, double> resident;

    // Bytes of one evk for (entry, candidate): conversion sites use
    // the conversion key, non-hoisted hybrid sites the Min-KS key.
    auto perKeyBytes = [&](const MctEntry &entry,
                           const MctCandidate &c) {
        if (entry.is_conversion)
            return ss_model_.conversionKeyBytes(
                entry.to_binary ? cost::ConversionDirection::to_binary
                                : cost::ConversionDirection::to_ckks,
                c.method, entry.level);
        bool min_ks = c.hoist == 1 &&
                      c.method == KeySwitchMethod::hybrid;
        return min_ks ? model_.evkBytesMinKs(c.method)
                      : model_.evkBytes(c.method, entry.level);
    };

    auto incrementalTransfer = [&](const MctEntry &entry,
                                   const MctCandidate &c) {
        double per_key = perKeyBytes(entry, c);
        double bytes = 0;
        for (int id : entry.key_ids) {
            auto it = resident.find({id, c.method});
            double have = it == resident.end() ? 0 : it->second;
            bytes += per_key > have ? per_key - have : 0;
        }
        return bytes / settings_.hbm_bytes_per_s;
    };

    for (const auto &entry : mct) {
        std::vector<MctCandidate> alive;

        // STEP-1: reserved key-storage capacity (plus any observed
        // method veto — a serving session that keeps missing on KLSS
        // keys asks for hybrid-only re-selection).
        for (const auto &c : entry.candidates) {
            if (!observed.allow_klss &&
                c.method == KeySwitchMethod::klss)
                continue;
            if (c.key_bytes <= settings_.key_capacity_bytes)
                alive.push_back(c);
        }
        if (alive.empty())
            alive = {entry.candidates.front()};  // degenerate fallback

        // Refine the MCT transfer estimate with key reuse: only the
        // limbs not already resident cross HBM.
        for (auto &c : alive)
            c.transfer_s = incrementalTransfer(entry, c);

        // Amortize first fetches over the key's local reuse — Aether
        // sees the whole trace offline, so it knows how often an evk
        // pays for itself while it stays resident.
        std::size_t entry_index =
            static_cast<std::size_t>(&entry - mct.data());
        auto amortized = [&](const MctCandidate &c) {
            // Amortization requires the surrounding key working set
            // to actually fit the reserve — otherwise the key gets
            // evicted before its next use and pays full freight.
            double per_key = perKeyBytes(entry, c);
            double window_set =
                static_cast<double>(distinctKeysInWindow(entry_index)) *
                per_key;
            // Observed re-scoring: both branches guard on the exact
            // default so the offline path stays byte-identical (the
            // (p - 1) * s + 1 identity is not exact in floating
            // point).
            if (window_set > settings_.key_capacity_bytes) {
                double t = c.transfer_s;
                if (observed.transfer_weight != 1.0)
                    t *= observed.transfer_weight;
                return t;
            }
            double total_uses = 0;
            for (int id : entry.key_ids)
                total_uses += static_cast<double>(
                    localUses(id, entry_index));
            double per_site =
                total_uses / static_cast<double>(entry.key_ids.size());
            if (observed.reuse_scale != 1.0)
                per_site = 1.0 + (per_site - 1.0) *
                                     observed.reuse_scale;
            double t = c.transfer_s / std::max(1.0, per_site);
            if (observed.transfer_weight != 1.0)
                t *= observed.transfer_weight;
            return t;
        };

        // STEP-2: keep candidates whose evk transfer can hide behind
        // execution — the paper compares transmission latency against
        // key-switch execution time; with Hemera's static prefetch
        // the binding constraint is the cumulative HBM budget. Never
        // filter down to nothing.
        {
            std::vector<MctCandidate> hidden;
            for (const auto &c : alive) {
                double demand =
                    committed_transfer_s + amortized(c);
                double budget =
                    kHbmBudget * (committed_delay_s + c.delay_s);
                if (demand <= budget)
                    hidden.push_back(c);
            }
            if (!hidden.empty())
                alive = std::move(hidden);
        }

        // STEP-3: minimal effective time — compute delay or the
        // amortized share of the key transfer, whichever binds —
        // with near-ties resolved to the smaller key.
        auto effective = [&](const MctCandidate &c) {
            return std::max(c.delay_s, amortized(c));
        };
        const MctCandidate *best = &alive.front();
        for (const auto &c : alive) {
            double b = effective(*best), t = effective(c);
            if (t < b * (1.0 - tie_tol)) {
                best = &c;
            } else if (t <= b * (1.0 + tie_tol) &&
                       c.key_bytes < best->key_bytes) {
                best = &c;
            }
        }

        // Commit the chosen keys to the resident set.
        double per_key =
            entry.is_conversion
                ? perKeyBytes(entry, *best)
                : model_.evkBytes(best->method, entry.level);
        for (int id : entry.key_ids) {
            auto &have = resident[{id, best->method}];
            have = std::max(have, per_key);
        }

        AetherDecision d;
        d.op_index = entry.op_index;
        d.ct_index = entry.ct_index;
        d.level = entry.level;
        d.method = best->method;
        d.dataflow = best->dataflow;
        d.hoist = best->hoist;
        config.decisions.push_back(d);
        committed_delay_s += best->delay_s;
        committed_transfer_s += amortized(*best);
    }
    return config;
}

AetherConfig
Aether::run(const trace::OpStream &stream) const
{
    return select(analyze(stream));
}

} // namespace fast::core
