/**
 * @file
 * Implementation of the TBM functional model.
 */
#include "core/tbm.hpp"

#include <stdexcept>
#include <string>

namespace fast::core {

namespace {

void
requireWidth(u64 v, int bits, const char *what)
{
    if (bits < 64 && (v >> bits) != 0)
        throw std::invalid_argument(std::string(what) +
                                    ": operand exceeds datapath width");
}

} // namespace

u128
TunableBitMultiplier::baseMultiply(u64 a, u64 b)
{
    // The physical base multiplier is 36x36; the Karatsuba middle
    // term feeds it (a0+a1)(b0+b1) which is at most 37 bits per
    // operand — the paper's Combiner-C accommodates the extra bit.
    requireWidth(a, 37, "base multiplier");
    requireWidth(b, 37, "base multiplier");
    ++stats_.base_mults;
    return (u128)a * b;
}

std::pair<u128, u128>
TunableBitMultiplier::multiplyDual36(u64 a0, u64 b0, u64 a1, u64 b1)
{
    requireWidth(a0, kNarrowBits, "dual36");
    requireWidth(b0, kNarrowBits, "dual36");
    requireWidth(a1, kNarrowBits, "dual36");
    requireWidth(b1, kNarrowBits, "dual36");
    // Multiplier B takes the low lane, multiplier A the high lane;
    // both issue in the same cycle (red datapath in Fig. 6).
    u128 low = baseMultiply(a0, b0);
    u128 high = baseMultiply(a1, b1);
    ++stats_.cycles;
    stats_.products36 += 2;
    return {low, high};
}

u128
TunableBitMultiplier::multiply60(u64 a, u64 b)
{
    requireWidth(a, kWideBits, "single60");
    requireWidth(b, kWideBits, "single60");
    // Split: low 36 bits full precision, upper segment zero-extended
    // to 24 significant bits (Sec. 4.2).
    const u64 mask36 = (u64(1) << 36) - 1;
    u64 a0 = a & mask36, a1 = a >> 36;
    u64 b0 = b & mask36, b1 = b >> 36;

    // Karatsuba with three base multipliers:
    //   p0 = a0*b0, p1 = a1*b1, pm = (a0+a1)(b0+b1),
    //   mid = pm - p0 - p1 = a0*b1 + a1*b0.
    u128 p0 = baseMultiply(a0, b0);           // M-B
    u128 p1 = baseMultiply(a1, b1);           // M-A
    u128 pm = baseMultiply(a0 + a1, b0 + b1); // M-C
    u128 mid = pm - p0 - p1;

    ++stats_.cycles;
    ++stats_.products60;
    return (p1 << 72) + (mid << 36) + p0;
}

u64
TunableBitMultiplier::mulMod60(u64 a, u64 b, const math::Modulus &q)
{
    return q.reduce128(multiply60(a % q.value(), b % q.value()));
}

std::pair<u64, u64>
TunableBitMultiplier::mulModDual36(u64 a0, u64 b0, u64 a1, u64 b1,
                                   const math::Modulus &q0,
                                   const math::Modulus &q1)
{
    auto [p_low, p_high] = multiplyDual36(a0, b0, a1, b1);
    return {q0.reduce128(p_low), q1.reduce128(p_high)};
}

} // namespace fast::core
