/**
 * @file
 * Tunable-Bit Multiplier (TBM) — Sec. 4.2 of the FAST paper.
 *
 * The TBM is built from three 36-bit base multipliers (M-A/B/C) and
 * combiner logic. In 36-bit mode it executes two independent 36x36
 * products per cycle (doubling lane parallelism for the hybrid
 * key-switching method); in 60-bit mode the three base multipliers
 * implement one 60x60 product via a Karatsuba decomposition — one
 * fewer base multiplier than the four a Booth-style composition
 * needs (the 33% reduction the paper cites), serving the KLSS
 * method's wide arithmetic.
 *
 * This is a bit-exact functional model with an invocation counter so
 * tests and the simulator can audit base-multiplier usage.
 */
#ifndef FAST_CORE_TBM_HPP
#define FAST_CORE_TBM_HPP

#include <cstdint>
#include <utility>

#include "math/modarith.hpp"

namespace fast::core {

using math::u128;
using math::u64;

/** Operating mode of one TBM instance. */
enum class TbmMode {
    dual36,    ///< two independent 36-bit products per cycle
    single60,  ///< one 60-bit product per cycle
};

/**
 * Functional TBM. All methods validate operand widths; results are
 * produced exclusively from 36-bit base-multiplier invocations so the
 * model is structurally faithful to the hardware datapath.
 */
class TunableBitMultiplier
{
  public:
    /** Cumulative datapath statistics. */
    struct Stats {
        std::uint64_t base_mults = 0;   ///< 36-bit multiplier firings
        std::uint64_t cycles = 0;       ///< issue cycles consumed
        std::uint64_t products36 = 0;   ///< 36-bit results produced
        std::uint64_t products60 = 0;   ///< 60-bit results produced
    };

    /** Maximum operand widths per mode. */
    static constexpr int kNarrowBits = 36;
    static constexpr int kWideBits = 60;

    /**
     * Dual 36-bit mode: one cycle, two independent products using
     * base multipliers A and B (M-C idles).
     */
    std::pair<u128, u128> multiplyDual36(u64 a0, u64 b0, u64 a1, u64 b1);

    /**
     * 60-bit mode: one cycle, one product via Karatsuba on three base
     * multipliers. Operands split as x = x1*2^36 + x0 with x1 at most
     * 24 bits (the paper's zero-extended upper segment).
     */
    u128 multiply60(u64 a, u64 b);

    /**
     * Modular multiply mod q (q < 2^60) on the 60-bit datapath —
     * what a Montgomery/Barrett wrapper around the TBM produces.
     */
    u64 mulMod60(u64 a, u64 b, const math::Modulus &q);

    /** Two independent 36-bit modular products. */
    std::pair<u64, u64> mulModDual36(u64 a0, u64 b0, u64 a1, u64 b1,
                                     const math::Modulus &q0,
                                     const math::Modulus &q1);

    const Stats &stats() const { return stats_; }
    void resetStats() { stats_ = {}; }

    /** Throughput (products per cycle) of a mode. */
    static int productsPerCycle(TbmMode mode)
    {
        return mode == TbmMode::dual36 ? 2 : 1;
    }

  private:
    /** One 36x36 base multiplier firing (max 37-bit operands for the
     *  Karatsuba middle term, as in the hardware's M-C). */
    u128 baseMultiply(u64 a, u64 b);

    Stats stats_;
};

} // namespace fast::core

#endif // FAST_CORE_TBM_HPP
