/**
 * @file
 * Implementation of the Hemera runtime.
 */
#include "core/hemera.hpp"

#include <cmath>

#include "obs/trace.hpp"

namespace fast::core {

const char *
toString(EvkTransferMode mode)
{
    switch (mode) {
      case EvkTransferMode::full: return "full";
      case EvkTransferMode::seed_expanded: return "seed_expanded";
    }
    return "unknown";
}

EvkPool::EvkPool(cost::KeySwitchCostModel model) : model_(model)
{
}

void
EvkPool::populate(std::size_t max_level)
{
    for (std::size_t level = 0; level <= max_level; ++level) {
        for (auto method :
             {KeySwitchMethod::hybrid, KeySwitchMethod::klss}) {
            for (bool rot : {false, true}) {
                EvkPoolEntry entry;
                entry.level = level;
                entry.method = method;
                entry.is_rotation = rot;
                entry.bytes = model_.evkBytes(method, level);
                entry.hbm_address = next_address_;
                next_address_ += static_cast<std::uint64_t>(entry.bytes);
                total_bytes_ += entry.bytes;
                entries_[{level, method, rot}] = entry;
            }
        }
    }
}

Result<EvkPoolEntry>
EvkPool::lookup(std::size_t level, const ckks::KeySwitchVariant &variant,
                bool is_rotation) const
{
    auto it = entries_.find({level, variant.method, is_rotation});
    if (it == entries_.end())
        return Status::error(StatusCode::not_found,
                             "evk pool: no key at level " +
                                 std::to_string(level) + " for " +
                                 ckks::toString(variant));
    return it->second;
}

void
Hemera::HistoryRecorder::record(std::size_t level, KeySwitchMethod method,
                                std::size_t hoist)
{
    auto &q = per_level[level];
    q.emplace_back(method, hoist);
    while (q.size() > depth)
        q.pop_front();
}

std::optional<std::pair<KeySwitchMethod, std::size_t>>
Hemera::HistoryRecorder::predict(std::size_t level) const
{
    auto it = per_level.find(level);
    if (it == per_level.end() || it->second.empty())
        return std::nullopt;
    return it->second.back();
}

Hemera::Hemera(cost::KeySwitchCostModel model, std::size_t history_depth)
    : model_(model), pool_(model)
{
    history_.depth = history_depth;
}

Result<TransferPlan>
Hemera::plan(const trace::OpStream &stream, const AetherConfig &config,
             const PlanOptions &options)
{
    FAST_OBS_SPAN_VAR(span, "hemera.plan");
    FAST_OBS_SPAN_ARG(span, "ops",
                      static_cast<std::uint64_t>(stream.ops.size()));
    if (stream.ops.empty())
        return Status::error(StatusCode::empty_stream,
                             "hemera: nothing to plan");
    // Populate the pool for every level the trace touches.
    std::size_t max_level = 0;
    for (const auto &op : stream.ops)
        max_level = std::max(max_level, op.level);
    pool_.populate(max_level);

    TransferPlan plan_out;
    plan_out.mode = options.mode;
    std::size_t processed_group = 0;
    stats_ = {};
    bool seed_mode = options.mode == EvkTransferMode::seed_expanded;
    double batch_bytes =
        static_cast<double>(kBatchElements) * sizeof(std::uint64_t);

    for (std::size_t i = 0; i < stream.ops.size(); ++i) {
        const auto &op = stream.ops[i];
        if (!op.needsKeySwitch())
            continue;
        if (op.hoist_group != 0 && op.hoist_group == processed_group)
            continue;  // keys for the whole group planned at its head
        if (op.hoist_group != 0)
            processed_group = op.hoist_group;

        // The Monitor consults the Aether configuration file.
        AetherDecision d = config.decisionFor(i);
        stats_.config_lookups_ns += kConfigLookupNs;

        // Conversion sites key-switch their extraction/repack
        // rotations, so they draw on the rotation key pool.
        bool is_rotation = op.kind == trace::FheOpKind::hrot ||
                           trace::isSchemeSwitch(op.kind);
        auto looked = pool_.lookup(std::min(op.level, max_level),
                                   d.variant(), is_rotation);
        if (!looked)
            return looked.status();
        const EvkPoolEntry &entry = looked.value();

        EvkTransfer t;
        t.op_index = i;
        t.method = d.method;
        t.dataflow = d.dataflow;
        t.hoist = d.hoist;
        t.level = op.level;
        t.mode = options.mode;
        // A hoisted site needs all of its rotations' keys; a
        // sequential site streams them one at a time but still moves
        // the same total volume. A conversion is a single op whose
        // hoist_size carries its extraction/repack rotation count.
        double key_count = static_cast<double>(
            op.hoist_group != 0 || trace::isSchemeSwitch(op.kind)
                ? op.hoist_size
                : 1);
        t.full_bytes = entry.bytes * key_count;
        if (seed_mode) {
            // Only the `b` halves cross HBM; the `a` halves are
            // regenerated by the EKG from a per-key seed.
            t.bytes = t.full_bytes / 2.0 +
                      key_count * model_.evkSeedBytes();
            t.seed_bytes = key_count * model_.evkSeedBytes();
            t.expand_ns =
                key_count *
                model_.evkExpandOps(d.method,
                                    std::min(op.level, max_level)) /
                options.expand_ops_per_ns;
        } else {
            t.bytes = t.full_bytes;
        }
        t.batches = static_cast<std::size_t>(
            std::ceil(t.bytes / batch_bytes));

        // Prefetching: a history hit means the transfer was issued
        // ahead of time and overlaps the previous site's compute.
        auto predicted = history_.predict(op.level);
        t.prefetched = predicted &&
                       predicted->first == d.method &&
                       predicted->second == d.hoist;

        // Injected transfer failures: a timed-out transfer is
        // reissued and cannot overlap compute; a stall just adds
        // latency. Either way the plan absorbs it — callers see the
        // degradation in the stats, not an exception. A timed-out
        // seed-expanded transfer falls back to a full-key reissue
        // (the regenerated half is not trusted after the fault).
        if (transfer_hook_) {
            if (auto fault = transfer_hook_(t)) {
                if (fault->timed_out) {
                    ++stats_.transfer_timeouts;
                    t.prefetched = false;
                    if (seed_mode) {
                        t.mode = EvkTransferMode::full;
                        t.bytes = t.full_bytes;
                        t.seed_bytes = 0;
                        t.expand_ns = 0;
                        t.batches = static_cast<std::size_t>(
                            std::ceil(t.bytes / batch_bytes));
                    }
                    FAST_OBS_COUNT("hemera.transfer_timeouts", 1);
                }
                stats_.stall_ns += fault->stall_ns;
            }
        }
        if (t.prefetched) {
            ++stats_.prefetch_hits;
            FAST_OBS_COUNT("hemera.prefetch_hits", 1);
        } else {
            ++stats_.prefetch_misses;
            FAST_OBS_COUNT("hemera.prefetch_misses", 1);
        }
        history_.record(op.level, d.method, d.hoist);

        if (t.mode == EvkTransferMode::seed_expanded) {
            ++stats_.seed_expanded;
            stats_.bytes_saved += t.full_bytes - t.bytes;
            stats_.expand_ns += t.expand_ns;
            plan_out.bytes_saved += t.full_bytes - t.bytes;
            plan_out.seed_bytes += t.seed_bytes;
            plan_out.expand_ns += t.expand_ns;
            FAST_OBS_COUNT(
                "hemera.evk_bytes_saved",
                static_cast<std::uint64_t>(t.full_bytes - t.bytes));
        }
        stats_.total_bytes += t.bytes;
        plan_out.total_bytes += t.bytes;
        ++stats_.transfers;
        FAST_OBS_COUNT("hemera.transfers", 1);
        FAST_OBS_COUNT("hemera.evk_bytes",
                       static_cast<std::uint64_t>(t.bytes));
        plan_out.transfers.push_back(t);
    }
    return plan_out;
}

Hemera::HistorySnapshot
Hemera::historySnapshot() const
{
    HistorySnapshot snap;
    snap.levels = history_.per_level.size();
    for (const auto &[level, entries] : history_.per_level)
        snap.records += entries.size();
    snap.hit_rate = stats_.hitRate();
    return snap;
}

} // namespace fast::core
