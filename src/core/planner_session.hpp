/**
 * @file
 * PlannerSession: online Aether (PR 9).
 *
 * The offline Aether is a one-shot compiler: analyze a trace, pick a
 * key-switch variant per site, emit a config file, done. A serving
 * deployment drifts away from that snapshot — the request mix shifts,
 * batching changes the cold/warm split, Hemera's prefetcher hit rate
 * diverges from the modeled key reuse. `PlannerSession` wraps the
 * one-shot `Aether::analyze`/`select` in a feedback loop:
 *
 *   observe   per-dispatch signals (cold fraction, queue pressure,
 *             Hemera evk hit rate) accumulate into fixed windows of
 *             simulated time;
 *   re-score  when a window closes, the MCT is re-selected under
 *             `ObservedCosts` biased by the window's EMAs, producing
 *             a small set of candidate configs (offline pick, churn
 *             pessimist, delay-lean, delay-lean hybrid-only);
 *   measure   each candidate is priced through a caller-provided
 *             `MeasureFn` (the serving layer plans it through its
 *             `PlanCache`, a pure planning action — no live traffic
 *             runs under an unproven config);
 *   swap      the cheapest measured config under the observed
 *             cold/warm mix wins; beating the incumbent by more than
 *             the hysteresis bumps the workload's plan epoch, and the
 *             superseded config is handed back for cache
 *             invalidation.
 *
 * Determinism: the session runs on the planning thread in simulated
 * time. Every input (window boundaries, EMAs, measurement results) is
 * a deterministic function of the request stream and seed, so a
 * same-seed replay reproduces every window, every measurement, and
 * every swap — serving stats stay byte-identical.
 *
 * Offline mode is just a session that never observes: `planFor`
 * computes the static config once per workload and returns it
 * forever. `PlannerMode::off` preserves the legacy scheduler path
 * (no session at all, per-device default configs).
 */
#ifndef FAST_CORE_PLANNER_SESSION_HPP
#define FAST_CORE_PLANNER_SESSION_HPP

#include <cstddef>
#include <deque>
#include <functional>
#include <map>
#include <optional>
#include <string>

#include "core/aether.hpp"
#include "core/status.hpp"
#include "trace/op.hpp"

namespace fast::core {

/** How the serving layer plans key-switch variants. */
enum class PlannerMode {
    off,      ///< legacy path: per-device offline configs, no session
    offline,  ///< session path, static: plan once, never observe
    online,   ///< session path, adaptive: observe, re-score, swap
};

const char *toString(PlannerMode mode);

/** Tuning of one `PlannerSession`. */
struct PlannerOptions {
    PlannerMode mode = PlannerMode::off;
    /** Simulated time per observation window. */
    double window_ns = 2e7;
    /** Minimum observed requests before a window may close. */
    std::size_t min_window_requests = 6;
    /** Planning-time cost charged to the dispatch that swaps. */
    double replan_charge_ns = 25e3;
    /** Relative win a challenger needs to unseat the incumbent. */
    double hysteresis = 0.02;
    /** Per-workload cap on swaps (stability backstop). */
    std::size_t max_replans = 8;
    /** EMA smoothing for the observed signals. */
    double ema_alpha = 0.5;

    Status validate() const;
};

/** Aggregate counters exported into the serving stats. */
struct PlannerStats {
    PlannerMode mode = PlannerMode::off;
    std::size_t workloads = 0;     ///< workloads with planning state
    std::size_t windows = 0;       ///< observation windows closed
    std::size_t measurements = 0;  ///< candidate configs priced
    std::size_t replans = 0;       ///< plan swaps across workloads
    double replan_charge_ns = 0;   ///< total planning time charged
    double last_cold_fraction = 0; ///< EMA at the last closed window
    double last_evk_hit_rate = 0;  ///< EMA at the last closed window
};

/** Measured price of serving one batch under a candidate config. */
struct CandidateCost {
    double cold_ns = 0;      ///< first batch member (evk fetch paid)
    double warm_ns = 0;      ///< subsequent members (keys resident)
    double evk_hit_rate = 0; ///< Hemera prefetch hit rate of the plan
};

/**
 * One per-shard online-planning session. Single-threaded by design:
 * every method runs on the scheduler's planning thread in simulated
 * time.
 */
class PlannerSession
{
  public:
    /**
     * Prices one candidate config for a workload. Returning
     * `nullopt` marks the candidate unmeasurable this round (e.g. a
     * planning failure) — it simply does not compete.
     */
    using MeasureFn = std::function<std::optional<CandidateCost>(
        const AetherConfig &)>;

    /**
     * The session's planning verdict for one dispatch. `config`
     * stays owned by the session and pointer-stable for its
     * lifetime; `superseded` (when set) is the config a swap just
     * retired — the caller invalidates its cached plans.
     */
    struct PlanRef {
        const AetherConfig *config = nullptr;
        std::size_t epoch = 0;
        double charge_ns = 0;  ///< planning time to fold into dispatch
        const AetherConfig *superseded = nullptr;
    };

    PlannerSession(Aether aether, PlannerOptions options);

    /**
     * Plan (or re-plan) the config to serve @p stream under at
     * simulated time @p now_ns. In offline mode this selects once
     * per workload and returns the same ref forever. In online mode
     * a pending retune (a closed observation window) triggers
     * candidate generation + measurement here, on the planning
     * thread, before the dispatch proceeds.
     */
    PlanRef planFor(const trace::OpStream &stream, double now_ns,
                    const MeasureFn &measure);

    /**
     * Ingest one dispatched batch's observed signals. No-op unless
     * the session is online.
     */
    void observeBatch(const std::string &workload, double now_ns,
                      std::size_t requests, std::size_t cold_requests,
                      std::size_t queue_depth, double evk_hit_rate);

    /** Plan epoch of a workload (0 = still on the initial config). */
    std::size_t epochOf(const std::string &workload) const;

    /** Currently selected config; null before the first planFor. */
    const AetherConfig *currentConfigOf(
        const std::string &workload) const;

    /** True when the session ingests observations (online mode). */
    bool observing() const
    {
        return options_.mode == PlannerMode::online;
    }

    const PlannerOptions &options() const { return options_; }
    PlannerStats stats() const;

  private:
    struct WorkloadState {
        std::vector<MctEntry> mct;
        /** Deque: candidate configs must stay pointer-stable. */
        std::deque<AetherConfig> candidates;
        /** serialize() -> interned config (dedup). */
        std::map<std::string, const AetherConfig *> candidate_keys;
        std::map<const AetherConfig *, CandidateCost> measured;
        const AetherConfig *current = nullptr;
        std::size_t epoch = 0;
        std::size_t replans = 0;
        bool retune_pending = false;

        // Open observation window.
        double window_start_ns = -1;
        std::size_t window_requests = 0;
        std::size_t window_cold = 0;
        std::size_t window_queue_peak = 0;
        double window_hit_rate_sum = 0;
        std::size_t window_batches = 0;

        // Smoothed signals, and their values when the signal-driven
        // candidates were last generated.
        bool ema_valid = false;
        double ema_cold_fraction = 0;
        double ema_evk_hit_rate = 0;
        double gen_cold_fraction = -1;
        double gen_evk_hit_rate = -1;
    };

    WorkloadState &stateFor(const trace::OpStream &stream);
    const AetherConfig *internConfig(WorkloadState &state,
                                     AetherConfig config);
    void generateCandidates(WorkloadState &state);
    std::size_t measureCandidates(WorkloadState &state,
                                  const MeasureFn &measure);
    /** Retune one workload; returns the superseded config on swap. */
    const AetherConfig *retune(WorkloadState &state,
                               const MeasureFn &measure);

    Aether aether_;
    PlannerOptions options_;
    std::map<std::string, WorkloadState> workloads_;
    std::size_t windows_ = 0;
    std::size_t measurements_ = 0;
    std::size_t replans_ = 0;
    double charged_ns_ = 0;
    double last_cold_fraction_ = 0;
    double last_evk_hit_rate_ = 0;
};

} // namespace fast::core

#endif // FAST_CORE_PLANNER_SESSION_HPP
