/**
 * @file
 * The shared error vocabulary of the runtime layers.
 *
 * Every fallible API in `fast::core` and `fast::serve` returns a
 * `Status` (or a `Result<T>` when there is a value to hand back)
 * built from one shared `StatusCode` enum: admission rejection,
 * deadline expiry, retry exhaustion, device loss, plan failure, and
 * key-pool misses are all points in the same space, so a caller — and
 * the stats/report layer — can account for every outcome with one
 * switch. The vocabulary started life in `fast::serve` (PR 4), moved
 * here in PR 8 so `core::Hemera` and `core::EvkPool` could return
 * structured results, and now lives in the enclosing `fast` namespace
 * (PR 9): every layer — core, sim, serve, fleet — names the one
 * `Status`/`Result` API without per-layer aliases.
 */
#ifndef FAST_CORE_STATUS_HPP
#define FAST_CORE_STATUS_HPP

#include <cassert>
#include <optional>
#include <string>
#include <type_traits>
#include <utility>

namespace fast {

/**
 * Why an operation did not (fully) succeed. Admission-time rejection
 * reasons share this space with runtime fault outcomes, so one switch
 * accounts for every way a request can end.
 */
enum class StatusCode {
    ok = 0,
    // Admission-time rejections.
    queue_full,         ///< bounded queue at capacity
    empty_stream,       ///< no operations to execute
    deadline_expired,   ///< deadline already past at submission
    shed,               ///< dropped by graceful degradation (low prio)
    unavailable,        ///< no healthy device can ever serve this
    // Runtime failures (post-admission).
    timeout,            ///< per-request deadline passed in service
    retries_exhausted,  ///< failed more than `max_retries` times
    device_lost,        ///< serving device permanently failed
    device_quarantined, ///< circuit breaker opened on the device
    plan_failed,        ///< Aether/Hemera plan corrupt or unusable
    // Lookup failures.
    not_found,          ///< no entry for the requested key/level
    // API misuse.
    invalid_argument,   ///< builder/option validation failure
};

const char *toString(StatusCode code);

/**
 * Outcome of one fallible call: a code plus an optional
 * human-readable detail string (kept empty on hot paths).
 */
class [[nodiscard]] Status
{
  public:
    Status() = default;  ///< ok
    explicit Status(StatusCode code, std::string detail = "")
        : code_(code), detail_(std::move(detail))
    {
    }

    static Status ok() { return Status(); }
    static Status error(StatusCode code, std::string detail = "")
    {
        return Status(code, std::move(detail));
    }

    bool isOk() const { return code_ == StatusCode::ok; }
    explicit operator bool() const { return isOk(); }

    StatusCode code() const { return code_; }
    /** Stable machine-readable name of the code. */
    const char *reason() const { return fast::toString(code_); }
    const std::string &detail() const { return detail_; }

    /** "reason" or "reason: detail" — for logs and test failures. */
    std::string toString() const
    {
        if (detail_.empty())
            return reason();
        return std::string(reason()) + ": " + detail_;
    }

    friend bool operator==(const Status &a, const Status &b)
    {
        return a.code_ == b.code_;
    }
    friend bool operator!=(const Status &a, const Status &b)
    {
        return !(a == b);
    }

  private:
    StatusCode code_ = StatusCode::ok;
    std::string detail_;
};

/**
 * A value or the Status explaining its absence. `ok()` results always
 * hold a value; error results never do (enforced by assert).
 */
template <typename T>
class [[nodiscard]] Result
{
  public:
    /** Ok result wrapping @p value. */
    Result(T value) : value_(std::move(value)) {}
    /** Error result; @p status must not be ok. */
    Result(Status status) : status_(std::move(status))
    {
        assert(!status_.isOk() && "ok Result needs a value");
    }

    bool isOk() const { return status_.isOk(); }
    explicit operator bool() const { return isOk(); }

    const Status &status() const { return status_; }

    T &value() &
    {
        assert(isOk());
        return *value_;
    }
    const T &value() const &
    {
        assert(isOk());
        return *value_;
    }
    /** Moves the value out of an rvalue Result (move-only friendly). */
    T &&value() &&
    {
        assert(isOk());
        return *std::move(value_);
    }
    T valueOr(T fallback) const &
    {
        return isOk() ? *value_ : std::move(fallback);
    }
    T valueOr(T fallback) &&
    {
        return isOk() ? *std::move(value_) : std::move(fallback);
    }

    /**
     * Apply @p f to the value if ok, else forward the error:
     * `Result<U>` where `U = f(value)`. Errors skip @p f entirely.
     */
    template <typename F>
    auto map(F &&f) const & -> Result<std::invoke_result_t<F, const T &>>
    {
        using U = std::invoke_result_t<F, const T &>;
        if (!isOk())
            return Result<U>(status_);
        return Result<U>(std::forward<F>(f)(*value_));
    }
    template <typename F>
    auto map(F &&f) && -> Result<std::invoke_result_t<F, T &&>>
    {
        using U = std::invoke_result_t<F, T &&>;
        if (!isOk())
            return Result<U>(std::move(status_));
        return Result<U>(std::forward<F>(f)(*std::move(value_)));
    }

    /**
     * Chain a fallible step: @p f must itself return a `Result`.
     * The first error in the chain short-circuits the rest.
     */
    template <typename F>
    auto andThen(F &&f) const & -> std::invoke_result_t<F, const T &>
    {
        using R = std::invoke_result_t<F, const T &>;
        if (!isOk())
            return R(status_);
        return std::forward<F>(f)(*value_);
    }
    template <typename F>
    auto andThen(F &&f) && -> std::invoke_result_t<F, T &&>
    {
        using R = std::invoke_result_t<F, T &&>;
        if (!isOk())
            return R(std::move(status_));
        return std::forward<F>(f)(*std::move(value_));
    }

    T *operator->()
    {
        assert(isOk());
        return &*value_;
    }
    const T *operator->() const
    {
        assert(isOk());
        return &*value_;
    }

  private:
    Status status_;
    std::optional<T> value_;
};

} // namespace fast

#endif // FAST_CORE_STATUS_HPP
