/**
 * @file
 * Hemera: the online evaluation-key management runtime (Sec. 4.1.2,
 * Fig. 5b).
 *
 * Hemera owns the Evk Pool (HBM addresses of every evaluation key,
 * indexed by level), a Monitor that walks the operation flow ahead of
 * execution, a History Recorder that learns recurring
 * (level -> method/hoist) patterns, and a batch-wise transfer engine
 * that moves keys in 256-element batches, prefetching them so HBM
 * traffic overlaps key-switch execution.
 */
#ifndef FAST_CORE_HEMERA_HPP
#define FAST_CORE_HEMERA_HPP

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <optional>
#include <tuple>
#include <vector>

#include "core/aether.hpp"

namespace fast::core {

/** One evaluation key registered in the pool. */
struct EvkPoolEntry {
    std::size_t level = 0;
    KeySwitchMethod method = KeySwitchMethod::hybrid;
    bool is_rotation = false;
    std::uint64_t hbm_address = 0;
    double bytes = 0;
};

/**
 * Evk Pool: key addresses on HBM, L groups (one per level), each with
 * the rotation and multiplication keys for both methods.
 */
class EvkPool
{
  public:
    explicit EvkPool(cost::KeySwitchCostModel model);

    /** Register all keys up to @p max_level; assigns HBM addresses. */
    void populate(std::size_t max_level);

    /** Look up the key for a level/method/kind. */
    const EvkPoolEntry &lookup(std::size_t level, KeySwitchMethod method,
                               bool is_rotation) const;

    std::size_t size() const { return entries_.size(); }
    double totalBytes() const { return total_bytes_; }

  private:
    cost::KeySwitchCostModel model_;
    std::map<std::tuple<std::size_t, KeySwitchMethod, bool>,
             EvkPoolEntry> entries_;
    std::uint64_t next_address_ = 0;
    double total_bytes_ = 0;
};

/** One planned evk movement for the simulator to execute. */
struct EvkTransfer {
    std::size_t op_index = 0;     ///< key-switch site in the trace
    double bytes = 0;             ///< evk bytes to move
    std::size_t batches = 0;      ///< 256-element HBM batches
    bool prefetched = false;      ///< predicted by the history recorder
    KeySwitchMethod method = KeySwitchMethod::hybrid;
    std::size_t hoist = 1;
    std::size_t level = 0;
};

/**
 * Fault imposed on one planned transfer by an injected hook (serving
 * chaos tests, degraded-HBM studies). A timed-out transfer cannot
 * overlap compute; a stalled one adds latency to the plan.
 */
struct TransferFault {
    bool timed_out = false;
    double stall_ns = 0;
};

/** Statistics of one Hemera planning pass. */
struct HemeraStats {
    std::size_t transfers = 0;
    std::size_t prefetch_hits = 0;
    std::size_t prefetch_misses = 0;
    std::size_t transfer_timeouts = 0;  ///< injected by the hook
    double total_bytes = 0;
    double stall_ns = 0;           ///< injected transfer stalls
    double config_lookups_ns = 0;  ///< cumulative config access time

    double hitRate() const
    {
        auto total = prefetch_hits + prefetch_misses;
        return total == 0
                   ? 0.0
                   : static_cast<double>(prefetch_hits) /
                         static_cast<double>(total);
    }
};

/**
 * The runtime manager. Given a trace and the Aether configuration,
 * plans every evk transfer with prefetch marking; the simulator
 * replays the plan against its HBM model.
 */
class Hemera
{
  public:
    /** Elements per HBM batch (matches the units' 256-lane width). */
    static constexpr std::size_t kBatchElements = 256;
    /** Latency of one Aether-config lookup (paper: < 900 ns). */
    static constexpr double kConfigLookupNs = 900.0;

    /**
     * Injectable transfer-failure hook: consulted once per planned
     * transfer; returning a `TransferFault` fails or stalls it.
     * Hemera stays oblivious to *why* (the serving fault injector,
     * a degraded-HBM model, a test) — it only accounts the outcome.
     */
    using TransferHook =
        std::function<std::optional<TransferFault>(const EvkTransfer &)>;

    Hemera(cost::KeySwitchCostModel model, std::size_t history_depth = 8);

    /** Install (or clear, with nullptr) the transfer-failure hook. */
    void setTransferHook(TransferHook hook)
    {
        transfer_hook_ = std::move(hook);
    }

    /** Plan all transfers for a trace under an Aether config. */
    std::vector<EvkTransfer> plan(const trace::OpStream &stream,
                                  const AetherConfig &config);

    const HemeraStats &stats() const { return stats_; }
    const EvkPool &pool() const { return pool_; }

  private:
    /** History Recorder: predicts the next (method, hoist) per level. */
    struct HistoryRecorder {
        std::size_t depth;
        std::map<std::size_t,
                 std::deque<std::pair<KeySwitchMethod, std::size_t>>>
            per_level;

        void record(std::size_t level, KeySwitchMethod method,
                    std::size_t hoist);
        std::optional<std::pair<KeySwitchMethod, std::size_t>>
        predict(std::size_t level) const;
    };

    cost::KeySwitchCostModel model_;
    EvkPool pool_;
    HistoryRecorder history_;
    HemeraStats stats_;
    TransferHook transfer_hook_;
};

} // namespace fast::core

#endif // FAST_CORE_HEMERA_HPP
