/**
 * @file
 * Hemera: the online evaluation-key management runtime (Sec. 4.1.2,
 * Fig. 5b).
 *
 * Hemera owns the Evk Pool (HBM addresses of every evaluation key,
 * indexed by level), a Monitor that walks the operation flow ahead of
 * execution, a History Recorder that learns recurring
 * (level -> method/hoist) patterns, and a batch-wise transfer engine
 * that moves keys in 256-element batches, prefetching them so HBM
 * traffic overlaps key-switch execution.
 *
 * Transfers come in two modes: `full` moves both halves of each evk
 * over HBM; `seed_expanded` moves only the `b` halves plus a PRNG
 * seed and lets the AEM EKG regenerate the `a` halves on chip
 * (~2x fewer evk bytes, paid for with regeneration compute).
 */
#ifndef FAST_CORE_HEMERA_HPP
#define FAST_CORE_HEMERA_HPP

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <optional>
#include <tuple>
#include <vector>

#include "core/aether.hpp"
#include "core/status.hpp"

namespace fast::core {

/** One evaluation key registered in the pool. */
struct EvkPoolEntry {
    std::size_t level = 0;
    KeySwitchMethod method = KeySwitchMethod::hybrid;
    bool is_rotation = false;
    std::uint64_t hbm_address = 0;
    double bytes = 0;
};

/**
 * Evk Pool: key addresses on HBM, L groups (one per level), each with
 * the rotation and multiplication keys for both methods.
 */
class EvkPool
{
  public:
    explicit EvkPool(cost::KeySwitchCostModel model);

    /** Register all keys up to @p max_level; assigns HBM addresses. */
    void populate(std::size_t max_level);

    /**
     * Look up the key for a level/variant/kind. Keys are stored per
     * method — dataflow variants of one method share the same evk —
     * so every dataflow of a registered method resolves. Returns
     * `StatusCode::not_found` for unpopulated levels instead of
     * throwing.
     */
    Result<EvkPoolEntry> lookup(std::size_t level,
                                const ckks::KeySwitchVariant &variant,
                                bool is_rotation) const;

    std::size_t size() const { return entries_.size(); }
    double totalBytes() const { return total_bytes_; }

  private:
    cost::KeySwitchCostModel model_;
    std::map<std::tuple<std::size_t, KeySwitchMethod, bool>,
             EvkPoolEntry> entries_;
    std::uint64_t next_address_ = 0;
    double total_bytes_ = 0;
};

/** How Hemera moves evaluation keys over HBM. */
enum class EvkTransferMode {
    full,           ///< both halves of every key cross HBM
    seed_expanded,  ///< `b` halves + seed; EKG regenerates `a` halves
};

const char *toString(EvkTransferMode mode);

/** One planned evk movement for the simulator to execute. */
struct EvkTransfer {
    std::size_t op_index = 0;     ///< key-switch site in the trace
    double bytes = 0;             ///< evk bytes actually moved over HBM
    std::size_t batches = 0;      ///< 256-element HBM batches
    bool prefetched = false;      ///< predicted by the history recorder
    KeySwitchMethod method = KeySwitchMethod::hybrid;
    ckks::KeySwitchDataflow dataflow =
        ckks::KeySwitchDataflow::standard;
    std::size_t hoist = 1;
    std::size_t level = 0;
    EvkTransferMode mode = EvkTransferMode::full;
    double full_bytes = 0;   ///< bytes a full-key transfer would move
    double seed_bytes = 0;   ///< PRNG seed payload (seed_expanded only)
    double expand_ns = 0;    ///< EKG regeneration time charged on chip
};

/**
 * Fault imposed on one planned transfer by an injected hook (serving
 * chaos tests, degraded-HBM studies). A timed-out transfer cannot
 * overlap compute; a stalled one adds latency to the plan.
 */
struct TransferFault {
    bool timed_out = false;
    double stall_ns = 0;
};

/** Statistics of one Hemera planning pass. */
struct HemeraStats {
    std::size_t transfers = 0;
    std::size_t prefetch_hits = 0;
    std::size_t prefetch_misses = 0;
    std::size_t transfer_timeouts = 0;  ///< injected by the hook
    std::size_t seed_expanded = 0;      ///< transfers in seed mode
    double total_bytes = 0;
    double bytes_saved = 0;        ///< full - moved (seed expansion)
    double expand_ns = 0;          ///< cumulative EKG regeneration
    double stall_ns = 0;           ///< injected transfer stalls
    double config_lookups_ns = 0;  ///< cumulative config access time

    double hitRate() const
    {
        auto total = prefetch_hits + prefetch_misses;
        return total == 0
                   ? 0.0
                   : static_cast<double>(prefetch_hits) /
                         static_cast<double>(total);
    }
};

/** Options of one Hemera planning pass. */
struct PlanOptions {
    EvkTransferMode mode = EvkTransferMode::full;
    /**
     * EKG regeneration throughput: uniform-random evk words produced
     * per nanosecond (the AEM's Keccak lanes). Sets the `expand_ns`
     * charged to each seed-expanded transfer.
     */
    double expand_ops_per_ns = 2048.0;
};

/** The structured result of a Hemera planning pass. */
struct TransferPlan {
    std::vector<EvkTransfer> transfers;
    EvkTransferMode mode = EvkTransferMode::full;
    double total_bytes = 0;  ///< HBM bytes actually planned
    double bytes_saved = 0;  ///< vs. a full-key plan
    double seed_bytes = 0;   ///< total seed payload
    double expand_ns = 0;    ///< total EKG regeneration time
};

/**
 * The runtime manager. Given a trace and the Aether configuration,
 * plans every evk transfer with prefetch marking; the simulator
 * replays the plan against its HBM model.
 */
class Hemera
{
  public:
    /** Elements per HBM batch (matches the units' 256-lane width). */
    static constexpr std::size_t kBatchElements = 256;
    /** Latency of one Aether-config lookup (paper: < 900 ns). */
    static constexpr double kConfigLookupNs = 900.0;

    /**
     * Injectable transfer-failure hook: consulted once per planned
     * transfer; returning a `TransferFault` fails or stalls it.
     * Hemera stays oblivious to *why* (the serving fault injector,
     * a degraded-HBM model, a test) — it only accounts the outcome.
     * A timed-out seed-expanded transfer falls back to a full-key
     * retransmission: the regenerated half is assumed lost with the
     * batch, so the conservative reissue moves everything.
     */
    using TransferHook =
        std::function<std::optional<TransferFault>(const EvkTransfer &)>;

    Hemera(cost::KeySwitchCostModel model, std::size_t history_depth = 8);

    /** Install (or clear, with nullptr) the transfer-failure hook. */
    void setTransferHook(TransferHook hook)
    {
        transfer_hook_ = std::move(hook);
    }

    /**
     * Plan all transfers for a trace under an Aether config. Fails
     * with `StatusCode::empty_stream` when the trace has no
     * operations (a plan of zero transfers over a non-empty trace is
     * still a success).
     */
    Result<TransferPlan> plan(const trace::OpStream &stream,
                              const AetherConfig &config,
                              const PlanOptions &options);

    const HemeraStats &stats() const { return stats_; }
    const EvkPool &pool() const { return pool_; }

    /**
     * History Recorder: predicts the next (method, hoist) per level
     * from a bounded per-level history. Public since PR 9 so the
     * online planner (and tests) can inspect the prediction state a
     * serving session accumulates.
     */
    struct HistoryRecorder {
        std::size_t depth;
        std::map<std::size_t,
                 std::deque<std::pair<KeySwitchMethod, std::size_t>>>
            per_level;

        void record(std::size_t level, KeySwitchMethod method,
                    std::size_t hoist);
        std::optional<std::pair<KeySwitchMethod, std::size_t>>
        predict(std::size_t level) const;
    };

    /**
     * Exported hit-rate snapshot of the recorder + the last planning
     * pass — the evk-locality signal `core::PlannerSession` ingests.
     */
    struct HistorySnapshot {
        std::size_t levels = 0;   ///< levels with recorded history
        std::size_t records = 0;  ///< entries across all levels
        double hit_rate = 0;      ///< prefetch hit rate of the last plan
    };
    HistorySnapshot historySnapshot() const;

    const HistoryRecorder &history() const { return history_; }

  private:
    cost::KeySwitchCostModel model_;
    EvkPool pool_;
    HistoryRecorder history_;
    HemeraStats stats_;
    TransferHook transfer_hook_;
};

} // namespace fast::core

#endif // FAST_CORE_HEMERA_HPP
