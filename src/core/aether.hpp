/**
 * @file
 * Aether: the offline key-switching method analysis and decision tool
 * (Sec. 4.1.1, Fig. 5a).
 *
 * Aether consumes an application's FHE operation flow, fills a
 * Methods Candidate Table (MCT) — one entry per key-switching site,
 * with cost, delay, key size, and key transfer time recorded for both
 * the hybrid and KLSS methods under each feasible hoisting
 * configuration — then runs the paper's three-step filter:
 *
 *   STEP-1  drop candidates whose evk working set exceeds the chip's
 *           reserved key storage;
 *   STEP-2  drop candidates whose evk transfer cannot be hidden
 *           behind the preceding key-switch's execution (the paper's
 *           transfer/execution comparison);
 *   STEP-3  among the survivors pick minimal execution time, breaking
 *           near-ties toward the smaller key.
 *
 * The result is the Aether configuration file (~1 KB), a per-site
 * record of {ciphertext index, level, method, hoisting number} that
 * Hemera reads at run time.
 */
#ifndef FAST_CORE_AETHER_HPP
#define FAST_CORE_AETHER_HPP

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "cost/opcount.hpp"
#include "cost/scheme_switch.hpp"
#include "cost/worksets.hpp"
#include "trace/op.hpp"

namespace fast::core {

using ckks::KeySwitchMethod;

/** One candidate configuration inside an MCT entry. */
struct MctCandidate {
    KeySwitchMethod method = KeySwitchMethod::hybrid;
    ckks::KeySwitchDataflow dataflow =
        ckks::KeySwitchDataflow::standard;  ///< kernel schedule
    std::size_t hoist = 1;      ///< rotations sharing one decomposition
    double cost_ops = 0;        ///< modular multiplications
    double delay_s = 0;         ///< estimated compute time
    double key_bytes = 0;       ///< resident evk working set
    double transfer_s = 0;      ///< evk HBM transfer time

    /** The (method, dataflow, bits) descriptor of this candidate. */
    ckks::KeySwitchVariant variant() const
    {
        return ckks::KeySwitchVariant::of(method, dataflow);
    }
};

/** One Methods Candidate Table entry (bottom of Fig. 5a). */
struct MctEntry {
    std::size_t op_index = 0;    ///< first op of this site in the trace
    std::size_t ct_index = 0;    ///< ciphertext id
    std::size_t level = 0;       ///< ell at execution
    std::size_t times = 1;       ///< rotations at this site (h or 1)
    bool is_rotation = false;    ///< HRot vs HMult/conjugate
    /** CKKS<->binary conversion site (`ckks_to_bin`/`bin_to_ckks`):
     *  costed with `cost::SchemeSwitchCostModel`, always hoisted
     *  (the pipeline shares one decomposition by construction). */
    bool is_conversion = false;
    bool to_binary = false;      ///< extraction vs repack direction
    /** Identities of the evks this site consumes (rotation steps, or
     *  a single relin/conj id; -3 = extraction key, -4 = repack key),
     *  used for key-reuse-aware transfer estimates. */
    std::vector<int> key_ids;
    std::vector<MctCandidate> candidates;
};

/** One record of the Aether configuration file. */
struct AetherDecision {
    std::size_t op_index = 0;
    std::size_t ct_index = 0;
    std::size_t level = 0;
    KeySwitchMethod method = KeySwitchMethod::hybrid;
    ckks::KeySwitchDataflow dataflow =
        ckks::KeySwitchDataflow::standard;
    std::size_t hoist = 1;

    /** The (method, dataflow, bits) descriptor of this decision. */
    ckks::KeySwitchVariant variant() const
    {
        return ckks::KeySwitchVariant::of(method, dataflow);
    }
};

/** The configuration file Aether emits and Hemera consumes. */
struct AetherConfig {
    std::vector<AetherDecision> decisions;

    /** Text serialization (the "file"; about 1 KB for real traces). */
    std::string serialize() const;
    static AetherConfig deserialize(const std::string &text);

    /** Decision lookup by trace op index; falls back to hybrid/1. */
    AetherDecision decisionFor(std::size_t op_index) const;

    /** Fraction of key-switch sites assigned to KLSS. */
    double klssShare() const;
};

/**
 * Observed-signal re-scoring knobs for one `select()` pass (PR 9).
 *
 * Every default reproduces the offline selection bit for bit — the
 * scaling terms are applied only when a field actually deviates from
 * its default, so an `ObservedCosts{}` pass is byte-identical to the
 * plain `select(mct)`. The online planner (`core::PlannerSession`)
 * biases these with signals measured from a live serving session:
 * a low observed evk hit rate shrinks `reuse_scale` (modeled key
 * reuse did not materialize), a cold-dominated window raises
 * `transfer_weight` (transfers are on the critical path), and a
 * latency-sensitive window zeroes `tie_tolerance` (no charity toward
 * smaller keys).
 */
struct ObservedCosts {
    /** Scales the amortized evk transfer cost (1.0 = modeled). */
    double transfer_weight = 1.0;
    /** Scales modeled key reuse toward none (0.0 = every fetch cold). */
    double reuse_scale = 1.0;
    /** STEP-3 tie tolerance override; negative keeps Settings'. */
    double tie_tolerance = -1.0;
    /** Drop KLSS candidates before STEP-1 when false. */
    bool allow_klss = true;
};

/**
 * The offline analyzer.
 */
class Aether
{
  public:
    struct Settings {
        /** On-chip bytes reserved for evaluation keys (STEP-1). */
        double key_capacity_bytes = 120.0 * 1024 * 1024;
        /** HBM bandwidth for evk transfers. */
        double hbm_bytes_per_s = 1e12;
        /** Effective modular-mult throughput of the accelerator. */
        double ops_per_s = 2048e9;
        /** Relative latency slack treated as a tie in STEP-3. */
        double tie_tolerance = 0.02;
        /**
         * Prefetch window: evk transfers may overlap this many
         * preceding key-switch executions (Hemera's history-driven
         * prefetcher runs ahead of execution).
         */
        std::size_t prefetch_window = 4;
        /** Allow disabling methods (for ablation studies). */
        bool allow_klss = true;
        bool allow_hoisting = true;
        /** Score CiFlow dataflow variants alongside the methods. */
        bool allow_dataflow = true;
        /**
         * Optional microarchitecture-aware delay estimator for one
         * key-switch site: (variant, level, hoisted rotations) ->
         * seconds. When unset, delays fall back to cost_ops /
         * ops_per_s. FastSystem wires this to the same unit models
         * the simulator executes, so Aether's MCT Delay column
         * reflects the machine it schedules for.
         */
        std::function<double(const ckks::KeySwitchVariant &,
                             std::size_t, std::size_t)>
            variant_delay_estimator;
    };

    Aether(cost::KeySwitchCostModel model, Settings settings);

    const Settings &settings() const { return settings_; }

    /** Analysis workflow: build the MCT from an operation flow. */
    std::vector<MctEntry> analyze(const trace::OpStream &stream) const;

    /** Three-step selection over an MCT (modeled costs). */
    AetherConfig select(const std::vector<MctEntry> &mct) const;

    /**
     * Three-step selection with the modeled costs re-scored against
     * observed signals. `ObservedCosts{}` is byte-identical to the
     * plain overload.
     */
    AetherConfig select(const std::vector<MctEntry> &mct,
                        const ObservedCosts &observed) const;

    /**
     * For each MCT index and key id, the number of uses of that key
     * within +-window sites — the reuse a resident key can actually
     * capture before eviction (transfer amortization).
     */
    static std::map<int, std::vector<std::size_t>> keyUseSites(
        const std::vector<MctEntry> &mct);

    /** analyze + select. */
    AetherConfig run(const trace::OpStream &stream) const;

  private:
    MctCandidate makeCandidate(const ckks::KeySwitchVariant &variant,
                               std::size_t ell, std::size_t hoist,
                               std::size_t site_rotations) const;
    MctCandidate makeConversionCandidate(
        const ckks::KeySwitchVariant &variant, std::size_t ell,
        std::size_t rotations, bool to_binary) const;

    cost::KeySwitchCostModel model_;
    cost::SchemeSwitchCostModel ss_model_;
    cost::WorkingSetModel worksets_;
    Settings settings_;
};

} // namespace fast::core

#endif // FAST_CORE_AETHER_HPP
