/**
 * @file
 * Implementation of the shared status vocabulary.
 */
#include "core/status.hpp"

namespace fast {

const char *
toString(StatusCode code)
{
    switch (code) {
      case StatusCode::ok: return "ok";
      case StatusCode::queue_full: return "queue_full";
      case StatusCode::empty_stream: return "empty_stream";
      case StatusCode::deadline_expired: return "deadline_expired";
      case StatusCode::shed: return "shed";
      case StatusCode::unavailable: return "unavailable";
      case StatusCode::timeout: return "timeout";
      case StatusCode::retries_exhausted: return "retries_exhausted";
      case StatusCode::device_lost: return "device_lost";
      case StatusCode::device_quarantined: return "device_quarantined";
      case StatusCode::plan_failed: return "plan_failed";
      case StatusCode::not_found: return "not_found";
      case StatusCode::invalid_argument: return "invalid_argument";
    }
    return "?";
}

} // namespace fast
