/**
 * @file
 * Power, energy, and EDP model (Table 7). Average power combines a
 * static floor with per-unit dynamic power weighted by utilization,
 * using the ChipBudget peak-power breakdown.
 */
#ifndef FAST_SIM_ENERGY_HPP
#define FAST_SIM_ENERGY_HPP

#include "hw/area.hpp"
#include "sim/simulator.hpp"

namespace fast::sim {

/** Energy metrics of one workload run. */
struct EnergyReport {
    double avg_power_w = 0;
    double energy_j = 0;
    double edp_js = 0;  ///< energy-delay product (J*s)
};

/**
 * Maps simulation activity onto the chip's power budget.
 */
class EnergyModel
{
  public:
    /** Static (leakage + clocking) fraction of peak power. */
    static constexpr double kStaticFraction = 0.12;
    /**
     * Dynamic derating: busy units do not toggle every gate at the
     * synthesis-corner peak; calibrated against the paper's reported
     * workload averages (Table 7).
     */
    static constexpr double kDynamicDerate = 0.62;

    explicit EnergyModel(const hw::FastConfig &config)
        : config_(config), budget_(config)
    {
    }

    EnergyReport evaluate(const SimStats &stats) const;

    const hw::ChipBudget &budget() const { return budget_; }

  private:
    hw::FastConfig config_;
    hw::ChipBudget budget_;
};

} // namespace fast::sim

#endif // FAST_SIM_ENERGY_HPP
