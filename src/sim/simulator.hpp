/**
 * @file
 * The cycle-level simulator: schedules lowered kernels onto the
 * accelerator's units, overlapping compute with HBM transfers
 * (Hemera prefetching), and reports the execution metrics the paper
 * evaluates — total runtime, per-unit utilization (Fig. 11a), HBM
 * share, pipeline stalls, and modular-op totals (Fig. 11b).
 */
#ifndef FAST_SIM_SIMULATOR_HPP
#define FAST_SIM_SIMULATOR_HPP

#include <array>
#include <cstddef>
#include <map>
#include <string>
#include <vector>

#include "sim/lowering.hpp"

namespace fast::sim {

/** Aggregated execution metrics of one simulation. */
struct SimStats {
    double total_ns = 0;
    std::array<double, static_cast<std::size_t>(UnitKind::count)>
        busy_ns{};
    std::array<double, static_cast<std::size_t>(UnitKind::count)>
        mults{};
    double hbm_bytes = 0;
    double hbm_stall_ns = 0;  ///< compute waiting on evk transfers
    std::map<std::string, double> label_ns;  ///< per-kernel-label time

    double utilization(UnitKind unit) const
    {
        return total_ns == 0
                   ? 0
                   : busy_ns[static_cast<std::size_t>(unit)] / total_ns;
    }

    double totalMults() const;
    double milliseconds() const { return total_ns / 1e6; }

    /**
     * The @p n hottest kernel labels by accumulated time, descending
     * (ties broken by label so the order is deterministic) — a view
     * over `label_ns` for reports that must not copy the whole map.
     */
    std::vector<std::pair<std::string, double>> topLabels(
        std::size_t n) const;
};

/**
 * List scheduler with one serial resource per unit kind. Kernels of
 * an op execute in order; ops on different ciphertexts overlap
 * freely; prefetchable HBM kernels may start as soon as the previous
 * operation began (the Hemera prefetch window).
 */
class Simulator
{
  public:
    explicit Simulator(hw::FastConfig config) : config_(config) {}

    SimStats run(const std::vector<LoweredOp> &ops) const;

    /**
     * Convenience: lower + run under an Aether configuration. With
     * @p warm_evk the evk cache is primed before lowering (see
     * `Lowering::lower`), modeling steady-state re-execution.
     */
    SimStats run(const trace::OpStream &stream,
                 const cost::KeySwitchCostModel &model,
                 const core::AetherConfig &decisions,
                 bool prefetch = true, bool warm_evk = false) const;

  private:
    hw::FastConfig config_;
};

} // namespace fast::sim

#endif // FAST_SIM_SIMULATOR_HPP
