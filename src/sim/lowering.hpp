/**
 * @file
 * Lowering of FHE operations to hardware kernels under a chosen
 * key-switching variant (method x dataflow) and hoisting
 * configuration — the bridge from the Aether-annotated trace to the
 * cycle simulator.
 *
 * Dataflow variants (CiFlow-style):
 *  - `standard`: the textbook ModUp -> KeyMult -> ModDown pipeline;
 *  - `reordered`: ModDown's output transforms merge with the
 *    consumer's input transforms, halving the ModDown (I)NTT volume;
 *  - `fused`: decomposed digits stream through the KMU without
 *    re-materializing, folding the final ModDown scale pass into the
 *    accumulation (and always reusing input limbs across columns).
 */
#ifndef FAST_SIM_LOWERING_HPP
#define FAST_SIM_LOWERING_HPP

#include <vector>

#include "core/aether.hpp"
#include "hw/config.hpp"
#include "hw/nttu.hpp"
#include "hw/units.hpp"
#include "sim/kernel.hpp"
#include "trace/op.hpp"

namespace fast::sim {

using ckks::KeySwitchMethod;

/**
 * Lowers one trace into per-op kernel lists. Polynomials are
 * distributed across clusters (the SHARP/ARK data layout, Sec. 5.1),
 * so every unit model sees N / clusters coefficients.
 */
class Lowering
{
  public:
    Lowering(hw::FastConfig config, cost::KeySwitchCostModel model);

    const hw::FastConfig &config() const { return config_; }

    /**
     * Lower a whole trace. @p decisions assigns a variant/hoisting to
     * every key-switch site (op_index of the site head). With
     * @p warm_evk the execution is lowered as a warm batch member
     * (2..B of a serving batch): the batch executes element-
     * interleaved, so every evaluation key was already fetched by the
     * cold first execution and applied to all members while resident
     * — warm members move no evk bytes over HBM (the paper's batching
     * amortization), though all compute kernels are still emitted.
     */
    std::vector<LoweredOp> lower(const trace::OpStream &stream,
                                 const core::AetherConfig &decisions,
                                 bool prefetch_enabled,
                                 bool warm_evk = false) const;

    /**
     * Microarchitecture-level latency of one key-switch site: one
     * decomposition plus @p hoisted KeyMult/ModDown passes, each unit
     * pipelining independently (the simulator's intra-op model).
     * Used as Aether's delay estimator.
     */
    double keySwitchSeconds(const ckks::KeySwitchVariant &variant,
                            std::size_t ell, std::size_t hoisted) const;

  private:
    /** Coefficients handled per cluster. */
    std::size_t perCluster() const
    {
        return config_.clusters == 0
                   ? model_.config().degree
                   : model_.config().degree / config_.clusters;
    }

    void emitDecompose(LoweredOp &out, KeySwitchMethod method,
                       std::size_t ell) const;
    void emitKeyMultModDown(LoweredOp &out,
                            const ckks::KeySwitchVariant &variant,
                            std::size_t ell, bool rotation,
                            bool prefetchable, double evk_fetch_bytes,
                            bool input_reuse) const;
    void emitEvkExpand(LoweredOp &out, double fetched_bytes) const;
    void emitElementwise(LoweredOp &out, std::size_t limbs,
                         double factor, const char *label) const;
    /** NTTU kernel plus its ten-step NoC transpose companion. */
    void emitNtt(LoweredOp &out, std::size_t limbs, int bits,
                 std::size_t streams, const char *label) const;
    void emitPlainOperandFetch(LoweredOp &out, std::size_t limbs) const;
    void emitRescale(LoweredOp &out, std::size_t limbs) const;

    hw::FastConfig config_;
    cost::KeySwitchCostModel model_;
    hw::NttUnit nttu_;
    hw::BConvUnit bconvu_;
    hw::KeyMultUnit kmu_;
    hw::AutoUnit autou_;
    hw::AuxModule aem_;
    hw::NocUnit noc_;
};

} // namespace fast::sim

#endif // FAST_SIM_LOWERING_HPP
