/**
 * @file
 * Hardware-aligned kernel IR (Sec. 6.1): each FHE operation is
 * partitioned into kernels mapped onto FAST's execution units with
 * cycle-level timing.
 */
#ifndef FAST_SIM_KERNEL_HPP
#define FAST_SIM_KERNEL_HPP

#include <cstddef>
#include <string>
#include <vector>

namespace fast::sim {

/** The execution resource a kernel occupies. */
enum class UnitKind {
    nttu,    ///< NTT unit
    bconvu,  ///< base-conversion systolic arrays
    kmu,     ///< key-mult / element-wise unit
    autou,   ///< automorphism (Benes) unit
    aem,     ///< auxiliary module (DSU rescale datapath)
    noc,     ///< lane-wise network-on-chip (transposes, Fig. 7)
    hbm,     ///< off-chip transfers
    count,
};

const char *toString(UnitKind unit);

/** One scheduled unit occupancy. */
struct Kernel {
    UnitKind unit = UnitKind::kmu;
    double cycles = 0;     ///< occupancy (HBM kernels use ns directly)
    double mults = 0;      ///< modular mults performed (energy/util)
    double hbm_bytes = 0;  ///< bytes moved (HBM kernels only)
    bool prefetchable = false;  ///< may start before its op (Hemera)
    std::string label;
};

/** All kernels of one trace operation, executed in order. */
struct LoweredOp {
    std::size_t op_index = 0;
    std::size_t ct_index = 0;
    std::vector<Kernel> kernels;
};

} // namespace fast::sim

#endif // FAST_SIM_KERNEL_HPP
