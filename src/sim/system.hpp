/**
 * @file
 * Top-level system driver: wires Aether (offline analysis), Hemera
 * (runtime key management), the lowering pass, the cycle simulator,
 * and the energy model into one call — the software equivalent of
 * running a workload on the FAST board.
 */
#ifndef FAST_SIM_SYSTEM_HPP
#define FAST_SIM_SYSTEM_HPP

#include "core/hemera.hpp"
#include "sim/energy.hpp"
#include "sim/simulator.hpp"
#include "trace/workloads.hpp"

namespace fast::sim {

/** Everything one workload execution produces. */
struct WorkloadResult {
    std::string workload;
    core::AetherConfig aether;     ///< per-site variant decisions
    core::HemeraStats hemera;      ///< transfer/prefetch statistics
    core::TransferPlan plan;       ///< the planned evk movements
    SimStats stats;                ///< cycle-level metrics (cold start)
    /**
     * Metrics of a steady-state re-execution: the evk cache is primed
     * with every key the workload touches, so only capacity misses
     * still fetch. Serving batches charge the first execution on a
     * device with `stats` and the rest with `warm_stats`.
     */
    SimStats warm_stats;
    EnergyReport energy;           ///< power/energy/EDP (cold)
};

/**
 * A configured accelerator instance.
 */
class FastSystem
{
  public:
    explicit FastSystem(hw::FastConfig config);

    const hw::FastConfig &config() const { return config_; }
    const cost::KeySwitchCostModel &costModel() const { return model_; }

    /** Run a workload end to end. */
    WorkloadResult execute(const trace::OpStream &stream) const;

    /**
     * Run with an explicit Aether configuration (ablation studies:
     * OneKSW, hoisting-only, oracle, ...). The optional @p hook is
     * installed on the internal Hemera instance before planning —
     * the injection point for transfer-failure studies.
     */
    WorkloadResult execute(const trace::OpStream &stream,
                           const core::AetherConfig &aether,
                           core::Hemera::TransferHook hook = {}) const;

    /** End-to-end run with a Hemera transfer-failure hook. */
    WorkloadResult execute(const trace::OpStream &stream,
                           core::Hemera::TransferHook hook) const;

    /** The Aether instance this system uses for its decisions. */
    core::Aether makeAether() const;

  private:
    hw::FastConfig config_;
    cost::KeySwitchCostModel model_;
};

} // namespace fast::sim

#endif // FAST_SIM_SYSTEM_HPP
