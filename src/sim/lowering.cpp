/**
 * @file
 * Implementation of trace-to-kernel lowering.
 */
#include "sim/lowering.hpp"

#include <array>
#include <cmath>
#include <list>
#include <map>
#include <string>

namespace fast::sim {

namespace {

double
evkTransferBytes(const hw::FastConfig &config,
                 const cost::KeySwitchCostModel &model,
                 KeySwitchMethod method, std::size_t ell)
{
    // With seed-expanded evks the EKG regenerates the `a` halves on
    // chip, halving HBM traffic; otherwise both halves cross HBM.
    double factor = config.use_seed_evk
                        ? hw::AuxModule::ekgTrafficFactor()
                        : 1.0;
    return model.evkBytes(method, ell) * factor;
}

/**
 * On-chip evaluation-key cache: models the evk-reserve region of the
 * register file together with ARK-style inter-operation key reuse.
 * Keys are identified by their rotation amount (or relin/conj role)
 * and method; a reuse at a lower level is free (the resident key's
 * limb prefix), a reuse at a higher level fetches only the missing
 * limbs. LRU eviction under the configured capacity.
 */
class EvkCache
{
  public:
    explicit EvkCache(double capacity_bytes)
        : capacity_(capacity_bytes)
    {
    }

    /** Returns the bytes that must cross HBM for this access. */
    double access(const std::string &key, double bytes)
    {
        auto it = entries_.find(key);
        if (it != entries_.end()) {
            double fetch = bytes > it->second ? bytes - it->second : 0;
            used_ += fetch;
            it->second = std::max(it->second, bytes);
            touch(key);
            evictUntilFits();
            return fetch;
        }
        entries_[key] = bytes;
        lru_.push_back(key);
        used_ += bytes;
        evictUntilFits(key);
        return bytes;
    }

  private:
    void touch(const std::string &key)
    {
        lru_.remove(key);
        lru_.push_back(key);
    }

    void evictUntilFits(const std::string &keep = {})
    {
        while (used_ > capacity_ && lru_.size() > 1) {
            const std::string &victim = lru_.front();
            if (victim == keep) {
                lru_.push_back(victim);
                lru_.pop_front();
                continue;
            }
            used_ -= entries_[victim];
            entries_.erase(victim);
            lru_.pop_front();
        }
    }

    double capacity_;
    double used_ = 0;
    std::map<std::string, double> entries_;
    std::list<std::string> lru_;
};

std::string
evkCacheKey(const trace::FheOp &op, KeySwitchMethod method)
{
    std::string id = method == KeySwitchMethod::hybrid ? "H" : "K";
    switch (op.kind) {
      case trace::FheOpKind::hmult: return id + ":relin";
      case trace::FheOpKind::conjugate: return id + ":conj";
      case trace::FheOpKind::ckks_to_bin: return id + ":ext";
      case trace::FheOpKind::bin_to_ckks: return id + ":rep";
      default: return id + ":rot" + std::to_string(op.rot_steps);
    }
}

} // namespace

Lowering::Lowering(hw::FastConfig config, cost::KeySwitchCostModel model)
    : config_(config), model_(model), nttu_(config), bconvu_(config),
      kmu_(config), autou_(config), aem_(config), noc_(config)
{
}

void
Lowering::emitNtt(LoweredOp &out, std::size_t limbs, int bits,
                  std::size_t streams, const char *label) const
{
    std::size_t n = perCluster();
    Kernel k;
    k.unit = UnitKind::nttu;
    k.cycles = nttu_.cycles(n, limbs, bits, streams);
    k.mults = nttu_.mults(n, limbs) * config_.clusters;
    k.label = label;
    out.kernels.push_back(k);

    // The ten-step method's inter-lane-group transpose rides the NoC.
    Kernel t;
    t.unit = UnitKind::noc;
    t.cycles = noc_.transposeCycles(n, limbs);
    t.label = "ntt-transpose";
    out.kernels.push_back(t);
}

void
Lowering::emitElementwise(LoweredOp &out, std::size_t limbs,
                          double factor, const char *label) const
{
    std::size_t n = perCluster();
    Kernel k;
    k.unit = UnitKind::kmu;
    k.cycles = kmu_.elementwiseCycles(n, limbs, 36) * factor;
    k.mults = static_cast<double>(n) * limbs * factor *
              static_cast<double>(config_.clusters);
    k.label = label;
    out.kernels.push_back(k);
}

void
Lowering::emitPlainOperandFetch(LoweredOp &out, std::size_t limbs) const
{
    // OF-Limb (ARK [21], adopted in Sec. 6.1): plaintext operands are
    // stored at a single limb and extended to the working basis on
    // chip, so only one limb crosses HBM.
    Kernel k;
    k.unit = UnitKind::hbm;
    k.hbm_bytes = static_cast<double>(model_.config().degree) *
                  model_.config().q_bits / 8.0;
    k.prefetchable = true;  // plaintext operands are known statically
    k.label = "pt-fetch";
    out.kernels.push_back(k);

    // On-the-fly limb generation runs on the NTTU in 36-bit mode
    // (Sec. 5.2: "of-limbs generation").
    emitNtt(out, limbs, 36, 2, "of-limb");
}

void
Lowering::emitRescale(LoweredOp &out, std::size_t limbs) const
{
    std::size_t n = perCluster();
    emitNtt(out, 2, 36, 2, "rescale-ntt");

    Kernel dsu;
    dsu.unit = UnitKind::aem;
    dsu.cycles = aem_.dsuCycles(n, limbs);
    dsu.mults = static_cast<double>(n) * limbs * config_.clusters;
    dsu.label = "rescale-dsu";
    out.kernels.push_back(dsu);
}

void
Lowering::emitEvkExpand(LoweredOp &out, double fetched_bytes) const
{
    // The EKG regenerates as many `a`-half words as `b`-half words
    // fetched, one uniform word per AEM lane per cycle.
    double words = fetched_bytes / 8.0;
    Kernel k;
    k.unit = UnitKind::aem;
    k.cycles = words / static_cast<double>(config_.clusters *
                                           config_.lanes);
    k.label = "evk-expand";
    out.kernels.push_back(k);
}

void
Lowering::emitDecompose(LoweredOp &out, KeySwitchMethod method,
                        std::size_t ell) const
{
    std::size_t n = perCluster();
    const auto &cfg = model_.config();
    std::size_t l = ell + 1;

    // Stage 1 scaling runs on the KMU (Sec. 5.4).
    emitElementwise(out, l, 1.0, "bconv-scale");

    // The single input polynomial cannot pair limbs for dual-36 mode.
    emitNtt(out, l, 36, 1, "modup-intt");

    if (method == KeySwitchMethod::hybrid) {
        std::size_t a = cfg.alpha, k = cfg.specials;
        std::size_t beta = (l + a - 1) / a;
        std::size_t conv_out = beta * (l + k - a);

        Kernel conv;
        conv.unit = UnitKind::bconvu;
        conv.cycles = bconvu_.cycles(n, a, conv_out, 36);
        conv.mults = bconvu_.mults(n, a, conv_out) * config_.clusters;
        conv.label = "modup-bconv";
        out.kernels.push_back(conv);

        emitNtt(out, conv_out, 36, 2, "modup-ntt");
    } else {
        std::size_t a = cfg.klss_alpha;
        std::size_t beta = (l + a - 1) / a;
        std::size_t ap = model_.klssAuxLimbs();

        Kernel conv;
        conv.unit = UnitKind::bconvu;
        conv.cycles = bconvu_.cycles(n, a, beta * ap, 60);
        conv.mults = bconvu_.mults(n, a, beta * ap) * config_.clusters;
        conv.label = "klss-decompose";
        out.kernels.push_back(conv);

        emitNtt(out, beta * ap, 60, 2, "klss-ntt-T");
    }
}

void
Lowering::emitKeyMultModDown(LoweredOp &out,
                             const ckks::KeySwitchVariant &variant,
                             std::size_t ell, bool rotation,
                             bool prefetchable, double evk_fetch_bytes,
                             bool input_reuse) const
{
    std::size_t n = perCluster();
    const auto &cfg = model_.config();
    std::size_t l = ell + 1;
    KeySwitchMethod method = variant.method;
    int bits = variant.bits;
    bool reordered =
        variant.dataflow == ckks::KeySwitchDataflow::reordered;
    bool fused = variant.dataflow == ckks::KeySwitchDataflow::fused;
    // Fused streaming keeps digits resident at the KMU, so input
    // limbs are always reused across its columns.
    input_reuse = input_reuse || fused;

    // Evaluation key from HBM (zero on an on-chip cache hit thanks to
    // inter-operation key reuse); with seed-expanded transfers the
    // fetched bytes are the `b` halves and the EKG regenerates the
    // matching `a` halves on chip.
    if (evk_fetch_bytes > 0) {
        Kernel evk;
        evk.unit = UnitKind::hbm;
        evk.hbm_bytes = evk_fetch_bytes;
        evk.prefetchable = prefetchable;
        evk.label = "evk-fetch";
        out.kernels.push_back(evk);
        if (config_.use_seed_evk)
            emitEvkExpand(out, evk_fetch_bytes);
    }

    if (method == KeySwitchMethod::hybrid) {
        std::size_t a = cfg.alpha, k = cfg.specials;
        std::size_t beta = (l + a - 1) / a;

        if (rotation) {
            Kernel rot;
            rot.unit = UnitKind::autou;
            rot.cycles =
                autou_.cycles(n, beta * (l + k) + l, bits);
            rot.label = "automorphism";
            out.kernels.push_back(rot);
        }

        Kernel km;
        km.unit = UnitKind::kmu;
        km.cycles =
            kmu_.keyMultCycles(n, beta, l + k, bits, input_reuse);
        km.mults = 2.0 * n * beta * (l + k) * config_.clusters;
        km.label = "keymult";
        out.kernels.push_back(km);

        // Reordering merges ModDown's output transforms into the
        // consumer's input transforms: one of the two output polys'
        // (I)NTT volume disappears from this site.
        emitNtt(out, reordered ? (k + l) : 2 * (k + l), bits, 2,
                "moddown-ntt");

        Kernel md_conv;
        md_conv.unit = UnitKind::bconvu;
        md_conv.cycles = bconvu_.cycles(n, k, 2 * l, bits);
        md_conv.mults = bconvu_.mults(n, k, 2 * l) * config_.clusters;
        md_conv.label = "moddown-bconv";
        out.kernels.push_back(md_conv);
    } else {
        std::size_t a = cfg.klss_alpha;
        std::size_t beta = (l + a - 1) / a;
        std::size_t ap = model_.klssAuxLimbs();
        std::size_t bt = model_.klssOutputGroups(ell);

        if (rotation) {
            Kernel rot;
            rot.unit = UnitKind::autou;
            rot.cycles = autou_.cycles(n, beta * ap + l, bits);
            rot.label = "automorphism";
            out.kernels.push_back(rot);
        }

        // The KLSS vector-matrix structure always reuses input limbs
        // across the KMU's columns (Sec. 5.4).
        Kernel km;
        km.unit = UnitKind::kmu;
        km.cycles = kmu_.keyMultCycles(n, beta, bt * ap, bits, true);
        km.mults = 2.0 * n * beta * bt * ap * config_.clusters;
        km.label = "klss-keymult";
        out.kernels.push_back(km);

        emitNtt(out, 2 * bt * ap, bits, 2, "recover-intt");

        Kernel rec_conv;
        rec_conv.unit = UnitKind::bconvu;
        rec_conv.cycles = bconvu_.cycles(n, ap, 2 * l, bits);
        rec_conv.mults = bconvu_.mults(n, ap, 2 * l) * config_.clusters;
        rec_conv.label = "recover-bconv";
        out.kernels.push_back(rec_conv);

        // Under reordering the recovered limbs' forward NTT merges
        // with the consumer likewise.
        emitNtt(out, reordered ? l : 2 * l, 36, 2, "recover-ntt");
    }
    // Fusion folds the final subtract-and-scale into the KMU
    // accumulation, so the standalone elementwise pass disappears.
    if (!fused)
        emitElementwise(out, 2 * l, 1.0, "moddown-scale");
}

double
Lowering::keySwitchSeconds(const ckks::KeySwitchVariant &variant,
                           std::size_t ell, std::size_t hoisted) const
{
    LoweredOp op;
    emitDecompose(op, variant.method, ell);
    bool reuse = hoisted > 1 ||
                 variant.method == KeySwitchMethod::klss;
    for (std::size_t r = 0; r < std::max<std::size_t>(1, hoisted); ++r)
        emitKeyMultModDown(op, variant, ell, true, true, 0, reuse);
    // Per-unit serial occupancy; units overlap with each other.
    std::array<double, static_cast<std::size_t>(UnitKind::count)>
        unit_cycles{};
    for (const auto &k : op.kernels)
        unit_cycles[static_cast<std::size_t>(k.unit)] += k.cycles;
    double crit = 0;
    for (double c : unit_cycles)
        crit = std::max(crit, c);
    return crit / (config_.freq_ghz * 1e9);
}

std::vector<LoweredOp>
Lowering::lower(const trace::OpStream &stream,
                const core::AetherConfig &decisions,
                bool prefetch_enabled, bool warm_evk) const
{
    std::vector<LoweredOp> lowered;
    lowered.reserve(stream.ops.size());

    // Track the active decision for each hoisting group.
    std::size_t active_group = 0;
    core::AetherDecision group_decision;
    EvkCache cache(config_.evk_reserve_mb * 1024.0 * 1024.0);
    auto evkFetch = [&](const trace::FheOp &op, KeySwitchMethod method,
                        std::size_t ell, bool hoisted) {
        // Warm execution (batch members 2..B): the scheduler
        // dispatches same-workload batches that execute element-
        // interleaved, exactly the paper's batching model — each
        // evaluation key is fetched once per batch (charged to the
        // cold first execution) and applied to every member while
        // resident, so warm members move no evk bytes over HBM. The
        // kernels are still emitted (with zero transfer) so per-op
        // structure and downstream accounting stay aligned.
        if (warm_evk)
            return 0.0;
        // Min-KS (ARK [21], Sec. 6.1): non-hoisted hybrid key
        // switches use keys stored at the minimum modulus; hoisted
        // rotations and KLSS need the full-level key.
        bool min_ks = config_.use_min_ks && !hoisted &&
                      method == KeySwitchMethod::hybrid;
        double bytes =
            min_ks ? model_.evkBytesMinKs(method) *
                         (config_.use_seed_evk
                              ? hw::AuxModule::ekgTrafficFactor()
                              : 1.0)
                   : evkTransferBytes(config_, model_, method, ell);
        std::string id = evkCacheKey(op, method) +
                         (min_ks ? ":mk" : "");
        return cache.access(id, bytes);
    };


    for (std::size_t i = 0; i < stream.ops.size(); ++i) {
        const auto &op = stream.ops[i];
        LoweredOp out;
        out.op_index = i;
        out.ct_index = op.ct_index;
        std::size_t l = op.level + 1;

        switch (op.kind) {
          case trace::FheOpKind::hmult: {
            auto d = decisions.decisionFor(i);
            emitElementwise(out, 4 * l, 1.0, "tensor");
            emitDecompose(out, d.method, op.level);
            emitKeyMultModDown(out, d.variant(), op.level, false,
                               prefetch_enabled,
                               evkFetch(op, d.method, op.level, false),
                               d.method == KeySwitchMethod::klss);
            break;
          }
          case trace::FheOpKind::conjugate: {
            auto d = decisions.decisionFor(i);
            emitDecompose(out, d.method, op.level);
            emitKeyMultModDown(out, d.variant(), op.level, true,
                               prefetch_enabled,
                               evkFetch(op, d.method, op.level, false),
                               d.method == KeySwitchMethod::klss);
            break;
          }
          case trace::FheOpKind::hrot: {
            core::AetherDecision d;
            bool group_head = false;
            if (op.hoist_group != 0 && op.hoist_group == active_group) {
                d = group_decision;
            } else {
                d = decisions.decisionFor(i);
                if (op.hoist_group != 0) {
                    active_group = op.hoist_group;
                    group_decision = d;
                    group_head = true;
                }
            }
            bool hoisted = op.hoist_group != 0 && d.hoist > 1 &&
                           config_.use_hoisting;
            // Hoisted groups decompose once at the head; otherwise
            // every rotation pays the full decomposition.
            if (!hoisted || group_head || op.hoist_group == 0)
                emitDecompose(out, d.method, op.level);
            emitKeyMultModDown(out, d.variant(), op.level, true,
                               prefetch_enabled,
                               evkFetch(op, d.method, op.level, hoisted),
                               hoisted ||
                                   d.method == KeySwitchMethod::klss);
            break;
          }
          case trace::FheOpKind::pmult:
            emitPlainOperandFetch(out, l);
            emitElementwise(out, 2 * l, 1.0, "pmult");
            break;
          case trace::FheOpKind::cmult:
            emitElementwise(out, 2 * l, 1.0, "cmult");
            break;
          case trace::FheOpKind::hadd:
          case trace::FheOpKind::padd: {
            std::size_t n = perCluster();
            Kernel k;
            k.unit = UnitKind::kmu;
            k.cycles = kmu_.elementwiseCycles(n, 2 * l, 36);
            k.mults = 0;  // adds occupy the KMU but not multipliers
            k.label = "add";
            out.kernels.push_back(k);
            break;
          }
          case trace::FheOpKind::rescale:
            emitRescale(out, l);
            break;
          case trace::FheOpKind::modraise: {
            emitElementwise(out, l, 2.0, "modraise-lift");
            emitNtt(out, 2 * l, 36, 2, "modraise-ntt");
            break;
          }
          case trace::FheOpKind::ckks_to_bin:
          case trace::FheOpKind::bin_to_ckks: {
            auto d = decisions.decisionFor(i);
            bool to_bin = op.kind == trace::FheOpKind::ckks_to_bin;
            std::size_t rots = std::max<std::size_t>(1, op.hoist_size);
            // The extraction/repack rotations share one decomposition
            // (the conversion is a hoisted site by construction); the
            // conversion key is fetched once for the whole pipeline.
            emitDecompose(out, d.method, op.level);
            double fetch = evkFetch(op, d.method, op.level, true);
            for (std::size_t r = 0; r < rots; ++r)
                emitKeyMultModDown(out, d.variant(), op.level, true,
                                   prefetch_enabled, r == 0 ? fetch : 0,
                                   true);
            if (to_bin) {
                // Coefficient scale/round, then the modulus switch of
                // the gathered slots into the small binary ring.
                emitElementwise(out, l, 1.0, "extract-scale");
                emitElementwise(out, 1, 1.0, "extract-modswitch");
            } else {
                // Ring packing: full-level (I)NTT pair over the big
                // ring plus the scatter of LWE results into slots.
                emitNtt(out, 2 * l, 36, 2, "repack-ntt");
                emitElementwise(out, l, 1.0, "repack-scatter");
            }
            break;
          }
          case trace::FheOpKind::lut_eval: {
            // One batch of gate bootstraps over the small binary ring
            // (degree ~2^11 vs 2^16): blind-rotation butterflies ride
            // the NTTU, accumulation and sample extract the KMU. No
            // CKKS evaluation key crosses HBM.
            emitNtt(out, 2, 36, 2, "lut-blind-rotate");
            emitElementwise(out, 2, 1.0, "lut-accumulate");
            break;
          }
          case trace::FheOpKind::bootstrap_begin:
          case trace::FheOpKind::bootstrap_end:
            break;
        }
        lowered.push_back(std::move(out));
    }
    return lowered;
}

} // namespace fast::sim
