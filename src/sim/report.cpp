/**
 * @file
 * Implementation of the report formatters.
 */
#include "sim/report.hpp"

#include "obs/report.hpp"

namespace fast::sim {

using obs::appendf;

std::string
describeMct(const std::vector<core::MctEntry> &mct, std::size_t max_rows)
{
    std::string out;
    appendf(out, "Methods Candidate Table (%zu entries)\n",
            mct.size());
    appendf(out, "%6s %5s %5s %3s | %-28s | %-28s\n", "op", "ct",
            "level", "h", "hybrid cost/delay/key/xfer",
            "KLSS cost/delay/key/xfer");
    std::size_t rows = 0;
    for (const auto &e : mct) {
        if (rows++ >= max_rows) {
            appendf(out, "  ... (%zu more)\n", mct.size() - max_rows);
            break;
        }
        const core::MctCandidate *hybrid = nullptr, *klss = nullptr;
        for (const auto &c : e.candidates) {
            if (c.hoist != e.times && e.times > 1)
                continue;  // show the site-matching hoist config
            if (c.method == ckks::KeySwitchMethod::hybrid)
                hybrid = &c;
            else
                klss = &c;
        }
        auto cell = [&](const core::MctCandidate *c) {
            if (!c) {
                appendf(out, "| %-28s ", "-");
                return;
            }
            appendf(out, "| %6.1fM %6.1fus %5.0fMB %5.0fus ",
                    c->cost_ops / 1e6, c->delay_s * 1e6,
                    c->key_bytes / 1048576.0, c->transfer_s * 1e6);
        };
        appendf(out, "%6zu %5zu %5zu %3zu ", e.op_index, e.ct_index,
                e.level, e.times);
        cell(hybrid);
        cell(klss);
        out += '\n';
    }
    return out;
}

std::string
describeResult(const WorkloadResult &result)
{
    std::string out;
    appendf(out, "workload: %s\n", result.workload.c_str());
    appendf(out, "  latency: %.3f ms\n", result.stats.milliseconds());
    appendf(out, "  utilization:");
    for (auto u : {UnitKind::nttu, UnitKind::bconvu, UnitKind::kmu,
                   UnitKind::autou, UnitKind::noc, UnitKind::hbm}) {
        appendf(out, " %s %.0f%%", toString(u),
                100.0 * result.stats.utilization(u));
    }
    out += '\n';
    appendf(out, "  HBM: %.1f MB moved, %.3f ms stalled\n",
            result.stats.hbm_bytes / 1048576.0,
            result.stats.hbm_stall_ns / 1e6);
    appendf(out, "  hottest kernels:");
    for (const auto &[label, ns] : result.stats.topLabels(3))
        appendf(out, " %s %.3fms", label.c_str(), ns / 1e6);
    out += '\n';
    appendf(out, "  Aether: %zu sites, %.0f%% KLSS; Hemera hit rate "
                 "%.0f%%\n",
            result.aether.decisions.size(),
            100.0 * result.aether.klssShare(),
            100.0 * result.hemera.hitRate());
    appendf(out, "  power %.0f W, energy %.3f J, EDP %.3e J*s\n",
            result.energy.avg_power_w, result.energy.energy_j,
            result.energy.edp_js);
    return out;
}

} // namespace fast::sim
