/**
 * @file
 * Human-readable reports: the Methods Candidate Table (the paper's
 * Fig. 5a) and a workload execution summary. Pure formatting — used
 * by the examples and available to adopters for debugging Aether
 * decisions.
 */
#ifndef FAST_SIM_REPORT_HPP
#define FAST_SIM_REPORT_HPP

#include <string>

#include "sim/system.hpp"

namespace fast::sim {

/** Render an MCT (or its head) as a fixed-width table. */
std::string describeMct(const std::vector<core::MctEntry> &mct,
                        std::size_t max_rows = 12);

/** Render a workload result: timing, utilization, energy, Aether. */
std::string describeResult(const WorkloadResult &result);

} // namespace fast::sim

#endif // FAST_SIM_REPORT_HPP
