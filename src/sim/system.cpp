/**
 * @file
 * Implementation of the top-level system driver.
 */
#include "sim/system.hpp"

namespace fast::sim {

FastSystem::FastSystem(hw::FastConfig config)
    : config_(config), model_()
{
}

core::Aether
FastSystem::makeAether() const
{
    core::Aether::Settings settings;
    settings.key_capacity_bytes =
        config_.evk_reserve_mb * 1024.0 * 1024.0;
    settings.hbm_bytes_per_s = config_.hbm_bytes_per_s;
    settings.ops_per_s = config_.opsPerSecond(36);
    settings.allow_klss = config_.use_klss && config_.use_aether;
    settings.allow_hoisting = config_.use_hoisting;
    settings.allow_dataflow = config_.use_dataflow &&
                              config_.use_aether;
    // Aether schedules for this machine: estimate site delays with
    // the same unit models the simulator executes.
    auto lowering = std::make_shared<Lowering>(config_, model_);
    settings.variant_delay_estimator =
        [lowering](const ckks::KeySwitchVariant &v, std::size_t ell,
                   std::size_t h) {
            return lowering->keySwitchSeconds(v, ell, h);
        };
    return core::Aether(model_, settings);
}

WorkloadResult
FastSystem::execute(const trace::OpStream &stream) const
{
    return execute(stream, makeAether().run(stream));
}

WorkloadResult
FastSystem::execute(const trace::OpStream &stream,
                    core::Hemera::TransferHook hook) const
{
    return execute(stream, makeAether().run(stream), std::move(hook));
}

WorkloadResult
FastSystem::execute(const trace::OpStream &stream,
                    const core::AetherConfig &aether,
                    core::Hemera::TransferHook hook) const
{
    WorkloadResult result;
    result.workload = stream.name;
    result.aether = aether;

    core::Hemera hemera(model_);
    if (hook)
        hemera.setTransferHook(std::move(hook));
    core::PlanOptions plan_options;
    plan_options.mode = config_.use_seed_evk
                            ? core::EvkTransferMode::seed_expanded
                            : core::EvkTransferMode::full;
    auto plan = hemera.plan(stream, aether, plan_options);
    if (plan)
        result.plan = std::move(plan).value();
    result.hemera = hemera.stats();

    Simulator simulator(config_);
    result.stats = simulator.run(stream, model_, aether,
                                 /*prefetch=*/config_.use_aether);
    result.warm_stats = simulator.run(stream, model_, aether,
                                      /*prefetch=*/config_.use_aether,
                                      /*warm_evk=*/true);

    EnergyModel energy(config_);
    result.energy = energy.evaluate(result.stats);
    return result;
}

} // namespace fast::sim
