/**
 * @file
 * Implementation of the top-level system driver.
 */
#include "sim/system.hpp"

namespace fast::sim {

FastSystem::FastSystem(hw::FastConfig config)
    : config_(config), model_()
{
}

core::Aether
FastSystem::makeAether() const
{
    core::Aether::Settings settings;
    settings.key_capacity_bytes =
        config_.evk_reserve_mb * 1024.0 * 1024.0;
    settings.hbm_bytes_per_s = config_.hbm_bytes_per_s;
    settings.ops_per_s = config_.opsPerSecond(36);
    settings.allow_klss = config_.use_klss && config_.use_aether;
    settings.allow_hoisting = config_.use_hoisting;
    // Aether schedules for this machine: estimate site delays with
    // the same unit models the simulator executes.
    auto lowering = std::make_shared<Lowering>(config_, model_);
    settings.delay_estimator = [lowering](ckks::KeySwitchMethod m,
                                          std::size_t ell,
                                          std::size_t h) {
        return lowering->keySwitchSeconds(m, ell, h);
    };
    return core::Aether(model_, settings);
}

WorkloadResult
FastSystem::execute(const trace::OpStream &stream) const
{
    return execute(stream, makeAether().run(stream));
}

WorkloadResult
FastSystem::execute(const trace::OpStream &stream,
                    core::Hemera::TransferHook hook) const
{
    return execute(stream, makeAether().run(stream), std::move(hook));
}

WorkloadResult
FastSystem::execute(const trace::OpStream &stream,
                    const core::AetherConfig &aether,
                    core::Hemera::TransferHook hook) const
{
    WorkloadResult result;
    result.workload = stream.name;
    result.aether = aether;

    core::Hemera hemera(model_);
    if (hook)
        hemera.setTransferHook(std::move(hook));
    hemera.plan(stream, aether);
    result.hemera = hemera.stats();

    Simulator simulator(config_);
    result.stats = simulator.run(stream, model_, aether,
                                 /*prefetch=*/config_.use_aether);

    EnergyModel energy(config_);
    result.energy = energy.evaluate(result.stats);
    return result;
}

} // namespace fast::sim
