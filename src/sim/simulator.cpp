/**
 * @file
 * Implementation of the kernel-level cycle simulator.
 */
#include "sim/simulator.hpp"

#include <algorithm>

#include "obs/stats.hpp"

namespace fast::sim {

const char *
toString(UnitKind unit)
{
    switch (unit) {
      case UnitKind::nttu: return "NTTU";
      case UnitKind::bconvu: return "BConvU";
      case UnitKind::kmu: return "KMU";
      case UnitKind::autou: return "AutoU";
      case UnitKind::aem: return "AEM";
      case UnitKind::noc: return "NoC";
      case UnitKind::hbm: return "HBM";
      case UnitKind::count: break;
    }
    return "?";
}

double
SimStats::totalMults() const
{
    double total = 0;
    for (double m : mults)
        total += m;
    return total;
}

std::vector<std::pair<std::string, double>>
SimStats::topLabels(std::size_t n) const
{
    // Thin veneer over the shared top-K selection in fast::obs.
    return obs::topEntries(label_ns, n);
}

SimStats
Simulator::run(const std::vector<LoweredOp> &ops) const
{
    SimStats stats;
    std::array<double, static_cast<std::size_t>(UnitKind::count)>
        unit_free{};
    std::map<std::size_t, double> ct_ready;
    double hbm_bytes_per_ns = config_.hbm_bytes_per_s / 1e9;
    double cycle_ns = 1.0 / config_.freq_ghz;

    for (const auto &op : ops) {
        double arrival = ct_ready.count(op.ct_index)
                             ? ct_ready[op.ct_index]
                             : 0.0;
        // The units are fully pipelined (Sec. 6.1): within one
        // operation, kernels on different units overlap; each unit
        // serializes its own work. HBM transfers gate the compute
        // kernels that follow them in the kernel list.
        double data_ready = arrival;
        double op_end = arrival;

        for (const auto &kernel : op.kernels) {
            auto u = static_cast<std::size_t>(kernel.unit);
            double duration;
            double earliest;

            if (kernel.unit == UnitKind::hbm) {
                duration = kernel.hbm_bytes / hbm_bytes_per_ns;
                // Prefetchable transfers are issued by Hemera as soon
                // as the HBM channel frees up — the Aether config is
                // static, so the whole schedule is known in advance.
                earliest = kernel.prefetchable ? 0.0 : arrival;
                stats.hbm_bytes += kernel.hbm_bytes;
            } else {
                duration = kernel.cycles * cycle_ns;
                earliest = data_ready;
            }

            double start = std::max(earliest, unit_free[u]);
            double end = start + duration;
            unit_free[u] = end;
            stats.busy_ns[u] += duration;
            stats.mults[u] += kernel.mults;
            stats.label_ns[kernel.label] += duration;

            if (kernel.unit == UnitKind::hbm) {
                // Later compute kernels wait for the operands; any
                // time past the arrival point is a pipeline stall.
                if (end > data_ready) {
                    stats.hbm_stall_ns +=
                        end - std::max(data_ready, arrival);
                    data_ready = end;
                }
            }
            op_end = std::max(op_end, end);
        }
        ct_ready[op.ct_index] = op_end;
        stats.total_ns = std::max(stats.total_ns, op_end);
    }
    return stats;
}

SimStats
Simulator::run(const trace::OpStream &stream,
               const cost::KeySwitchCostModel &model,
               const core::AetherConfig &decisions, bool prefetch,
               bool warm_evk) const
{
    Lowering lowering(config_, model);
    return run(lowering.lower(stream, decisions, prefetch, warm_evk));
}

} // namespace fast::sim
