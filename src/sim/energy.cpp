/**
 * @file
 * Implementation of the energy model.
 */
#include "sim/energy.hpp"

namespace fast::sim {

namespace {

/** Map a budget component name to the unit whose activity drives it. */
UnitKind
unitFor(const std::string &name)
{
    if (name == "NTTU")
        return UnitKind::nttu;
    if (name == "BConvU")
        return UnitKind::bconvu;
    if (name == "KMU")
        return UnitKind::kmu;
    if (name == "AutoU")
        return UnitKind::autou;
    if (name == "AEM")
        return UnitKind::aem;
    if (name == "NoC")
        return UnitKind::noc;
    if (name == "HBM")
        return UnitKind::hbm;
    return UnitKind::count;  // RF: tied to overall activity
}

} // namespace

EnergyReport
EnergyModel::evaluate(const SimStats &stats) const
{
    EnergyReport report;
    if (stats.total_ns <= 0)
        return report;

    double overall_activity = 0;
    double compute_peak = 0;
    for (const auto &c : budget_.components()) {
        UnitKind u = unitFor(c.name);
        if (u == UnitKind::count)
            continue;
        overall_activity += stats.utilization(u) * c.peak_power_w;
        compute_peak += c.peak_power_w;
    }
    double avg_util =
        compute_peak > 0 ? overall_activity / compute_peak : 0;

    double dynamic = 0;
    for (const auto &c : budget_.components()) {
        UnitKind u = unitFor(c.name);
        double util = u == UnitKind::count ? avg_util
                                           : stats.utilization(u);
        dynamic += kDynamicDerate * (1.0 - kStaticFraction) *
                   c.peak_power_w * util;
    }
    double stat = kStaticFraction * budget_.totalPeakPowerW();

    report.avg_power_w = stat + dynamic;
    report.energy_j = report.avg_power_w * stats.total_ns * 1e-9;
    report.edp_js = report.energy_j * stats.total_ns * 1e-9;
    return report;
}

} // namespace fast::sim
