/**
 * @file
 * Implementation of the scheme-switching cost model.
 */
#include "cost/scheme_switch.hpp"

#include <cmath>

namespace fast::cost {

SchemeSwitchCostModel::SchemeSwitchCostModel(KeySwitchCostModel keyswitch,
                                             Config config)
    : ks_(keyswitch), config_(config)
{
}

SchemeSwitchCostModel
SchemeSwitchCostModel::fromParams(const ckks::CkksParams &params)
{
    return SchemeSwitchCostModel(KeySwitchCostModel::fromParams(params));
}

double
SchemeSwitchCostModel::gateBootstrapOps() const
{
    // One blind rotation is n external products, each a pair of
    // (I)NTTs plus the accumulator MACs over the small ring: the
    // classic 4 n log2 n butterfly bound plus 2 n accumulator ops.
    auto n = static_cast<double>(config_.bin_degree);
    return 4.0 * n * std::log2(n) + 2.0 * n;
}

OpBreakdown
SchemeSwitchCostModel::lutEval() const
{
    OpBreakdown b;
    auto batch = static_cast<double>(config_.lut_batch);
    double per_lut = gateBootstrapOps();
    // The blind-rotation butterflies are NTT work; the accumulator
    // MACs and the final sample extract are element-wise.
    auto n = static_cast<double>(config_.bin_degree);
    b.ntt = batch * (per_lut - 2.0 * n);
    b.elementwise = batch * 3.0 * n;  // accumulate + sample extract
    return b;
}

OpBreakdown
SchemeSwitchCostModel::conversionExtras(ConversionDirection direction,
                                        std::size_t ell,
                                        std::size_t rotations) const
{
    OpBreakdown b;
    auto n = static_cast<double>(ks_.config().degree);
    auto limbs = static_cast<double>(ell + 1);
    auto rots = static_cast<double>(std::max<std::size_t>(1, rotations));
    if (direction == ConversionDirection::to_binary) {
        // Scale/round every coefficient once per limb, then modulus-
        // switch the gathered slots into the binary ring (a BConv-like
        // MAC pass over the extraction outputs).
        b.elementwise = n * limbs;
        b.bconv = rots * static_cast<double>(config_.bin_degree) * limbs;
    } else {
        // Ring packing: one full-level (I)NTT pair over the big ring
        // plus the scatter of the LWE results into slots.
        b.ntt = 2.0 * ks_.nttOps() * limbs;
        b.elementwise = n * limbs + rots * n;
    }
    return b;
}

OpBreakdown
SchemeSwitchCostModel::conversion(ConversionDirection direction,
                                  const ckks::KeySwitchVariant &variant,
                                  std::size_t ell,
                                  std::size_t rotations) const
{
    std::size_t rots = std::max<std::size_t>(1, rotations);
    // The extraction/repack rotations share one decomposition — the
    // conversion is a hoisted site by construction.
    OpBreakdown b = ks_.keySwitch(variant, ell, rots);
    b += conversionExtras(direction, ell, rots);
    return b;
}

double
SchemeSwitchCostModel::conversionKeyBytes(ConversionDirection direction,
                                          ckks::KeySwitchMethod method,
                                          std::size_t ell) const
{
    double base = ks_.evkBytes(method, ell);
    return direction == ConversionDirection::to_ckks
               ? base * config_.repack_key_scale
               : base;
}

} // namespace fast::cost
