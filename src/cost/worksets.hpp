/**
 * @file
 * Working-set size model (Sec. 3.1, Fig. 3b): on-chip bytes needed by
 * ciphertexts plus evaluation keys at a given level, key-switching
 * method, and hoisting configuration. Aether's STEP-1 filter uses
 * this against the accelerator's reserved key storage (Sec. 4.1.1).
 */
#ifndef FAST_COST_WORKSETS_HPP
#define FAST_COST_WORKSETS_HPP

#include "cost/opcount.hpp"

namespace fast::cost {

/**
 * Working-set calculator layered on the op-count model's size
 * formulas.
 */
class WorkingSetModel
{
  public:
    explicit WorkingSetModel(KeySwitchCostModel model)
        : model_(std::move(model))
    {
    }

    const KeySwitchCostModel &model() const { return model_; }

    /** Bytes of one ciphertext at level ell. */
    double ciphertextBytes(std::size_t ell) const
    {
        return model_.ciphertextBytes(ell);
    }

    /** Bytes of one evk for the method at level ell. */
    double evkBytes(KeySwitchMethod method, std::size_t ell) const
    {
        return model_.evkBytes(method, ell);
    }

    /**
     * Total working set: @p live_cts resident ciphertexts plus the
     * evks of @p hoisted_rotations distinct rotations (hoisting keeps
     * one evk per rotation index resident simultaneously, which is
     * exactly why Fig. 3b shows storage scaling with the hoisting
     * number).
     */
    double workingSetBytes(KeySwitchMethod method, std::size_t ell,
                           std::size_t hoisted_rotations,
                           std::size_t live_cts) const
    {
        return static_cast<double>(live_cts) * ciphertextBytes(ell) +
               static_cast<double>(
                   hoisted_rotations == 0 ? 1 : hoisted_rotations) *
                   evkBytes(method, ell);
    }

    /** True when the working set exceeds @p capacity_bytes. */
    bool exceedsCapacity(KeySwitchMethod method, std::size_t ell,
                         std::size_t hoisted_rotations,
                         std::size_t live_cts,
                         double capacity_bytes) const
    {
        return workingSetBytes(method, ell, hoisted_rotations,
                               live_cts) > capacity_bytes;
    }

  private:
    KeySwitchCostModel model_;
};

} // namespace fast::cost

#endif // FAST_COST_WORKSETS_HPP
