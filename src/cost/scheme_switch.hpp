/**
 * @file
 * Cost model for Chameleon-style CKKS <-> binary scheme switching
 * (PAPERS.md: Chameleon). A conversion site is one trace op covering
 * the whole pipeline:
 *
 *   ckks_to_bin  slot extraction — a batch of hoisted rotations that
 *                gathers the packed slots, a coefficient scale/round
 *                pass, and the modulus switch into the small binary
 *                ring;
 *   lut_eval     one batch of binary-domain LUT evaluations (gate
 *                bootstraps over the small ring — no CKKS key);
 *   bin_to_ckks  repacking — hoisted rotations that scatter the LWE
 *                results back into slots plus one full-level ring
 *                packing NTT pass.
 *
 * The rotation share reuses `KeySwitchCostModel` (the conversions
 * key-switch like any hoisted site, which is why Aether can score
 * them in the MCT); the extraction/LUT/repack extras are the terms a
 * pure key-switch model cannot see.
 */
#ifndef FAST_COST_SCHEME_SWITCH_HPP
#define FAST_COST_SCHEME_SWITCH_HPP

#include "cost/opcount.hpp"

namespace fast::cost {

/** Which way a conversion site crosses the scheme boundary. */
enum class ConversionDirection {
    to_binary,  ///< ckks_to_bin: slot extraction
    to_ckks,    ///< bin_to_ckks: repacking (includes the refresh)
};

/**
 * Conversion cost model layered over a `KeySwitchCostModel`. All
 * compute is reported in the same modular-op units as the key-switch
 * model so Aether can compare conversion candidates against ordinary
 * key-switch sites with one `ops_per_s` scale.
 */
class SchemeSwitchCostModel
{
  public:
    struct Config {
        /** Binary-scheme ring degree n (TFHE-style small ring). */
        std::size_t bin_degree = std::size_t(1) << 11;
        /** LUT evaluations batched into one lut_eval trace op. */
        std::size_t lut_batch = 64;
        /**
         * Repack-key size relative to a rotation evk at the same
         * level (the ring-packing key carries an extra automorphism
         * tower in Chameleon's construction).
         */
        double repack_key_scale = 1.25;
    };

    explicit SchemeSwitchCostModel(KeySwitchCostModel keyswitch)
        : SchemeSwitchCostModel(keyswitch, Config{})
    {
    }
    SchemeSwitchCostModel(KeySwitchCostModel keyswitch, Config config);

    /** Build from a CKKS parameter set (key-switch model defaults). */
    static SchemeSwitchCostModel fromParams(
        const ckks::CkksParams &params);

    const Config &config() const { return config_; }
    const KeySwitchCostModel &keySwitchModel() const { return ks_; }

    /**
     * Full conversion cost at level @p ell with @p rotations
     * extraction/repack rotations sharing one decomposition (the
     * conversion is a single hoisted site by construction).
     */
    OpBreakdown conversion(ConversionDirection direction,
                           const ckks::KeySwitchVariant &variant,
                           std::size_t ell,
                           std::size_t rotations) const;

    /**
     * The conversion-specific extras on top of the hoisted rotation
     * key switches: extraction scale/round + modulus switch, or
     * repack ring-packing NTT + scatter. This is what Aether adds to
     * a plain hoisted candidate when costing a conversion site.
     */
    OpBreakdown conversionExtras(ConversionDirection direction,
                                 std::size_t ell,
                                 std::size_t rotations) const;

    /** One lut_eval batch: `lut_batch` gate bootstraps. */
    OpBreakdown lutEval() const;

    /** Ops of a single gate bootstrap over the binary ring. */
    double gateBootstrapOps() const;

    /**
     * Bytes of the conversion key (extraction key switches with a
     * rotation-sized evk; the repack key is `repack_key_scale`
     * heavier).
     */
    double conversionKeyBytes(ConversionDirection direction,
                              ckks::KeySwitchMethod method,
                              std::size_t ell) const;

  private:
    KeySwitchCostModel ks_;
    Config config_;
};

} // namespace fast::cost

#endif // FAST_COST_SCHEME_SWITCH_HPP
