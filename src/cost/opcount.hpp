/**
 * @file
 * Modular-operation count models for the hybrid and KLSS key-switching
 * methods (Sec. 3.1, Fig. 2/3a/11b of the FAST paper).
 *
 * The counts follow the kernel structure implemented functionally in
 * src/ckks/keyswitch.cpp: ModUp (INTT + BConv + NTT), KeyMult,
 * ModDown for the hybrid method; double decomposition into the 60-bit
 * auxiliary basis R_T, KeyMult over R_T, limb recovery, and ModDown
 * for KLSS [Kim-Lee-Seo-Song, CRYPTO'23]. Hoisting shares one
 * decomposition across h rotations (Sec. 2.2.3), so only the
 * KeyMult/ModDown terms scale with h.
 */
#ifndef FAST_COST_OPCOUNT_HPP
#define FAST_COST_OPCOUNT_HPP

#include <cstddef>
#include <string>

#include "ckks/params.hpp"

namespace fast::cost {

using ckks::KeySwitchMethod;

/** Modular-multiplication counts split by hardware kernel. */
struct OpBreakdown {
    double ntt = 0;          ///< (I)NTT butterflies
    double bconv = 0;        ///< base-conversion MACs (both stages)
    double keymult = 0;      ///< digit-by-evk multiplications
    double elementwise = 0;  ///< tensor products, rescale, ModDown scale

    double total() const { return ntt + bconv + keymult + elementwise; }

    OpBreakdown &operator+=(const OpBreakdown &o);
    OpBreakdown operator+(const OpBreakdown &o) const;
    OpBreakdown operator*(double f) const;
};

/**
 * Parameterized op-count model. Defaults reproduce the paper's
 * Set-I (hybrid) / Set-II (KLSS) configuration at N = 2^16.
 */
class KeySwitchCostModel
{
  public:
    struct Config {
        std::size_t degree = std::size_t(1) << 16;
        int q_bits = 36;             ///< working prime width
        std::size_t alpha = 12;      ///< hybrid group size (Set-I)
        std::size_t specials = 12;   ///< hybrid special primes k
        std::size_t klss_alpha = 5;  ///< KLSS group size (Set-II)
        std::size_t klss_specials = 9;  ///< KLSS special limbs alpha~
        int digit_bits = 60;         ///< KLSS digit width v
        /**
         * Relative cost of one 60-bit modular op in 36-bit-op units.
         * The paper reports op counts in which the wide R_T kernels
         * carry extra datapath cost; 1.3 reproduces its efficiency
         * bands (KLSS ~15% better at ell in [25,35], hybrid ~23%
         * better at ell in [5,12]). See DESIGN.md calibration notes.
         */
        double wide_op_weight = 1.3;
    };

    KeySwitchCostModel() : KeySwitchCostModel(Config{}) {}
    explicit KeySwitchCostModel(Config config);

    /** Build a model from a CKKS parameter set. */
    static KeySwitchCostModel fromParams(const ckks::CkksParams &params);

    const Config &config() const { return config_; }

    /** Mults of one N-point NTT: (N/2) log2 N. */
    double nttOps() const;

    /** Limbs of R_T needed so group products stay exact (alpha'). */
    std::size_t klssAuxLimbs() const;

    /** KLSS output limb groups beta~ at level ell. */
    std::size_t klssOutputGroups(std::size_t ell) const;

    /**
     * Key-switch cost at level ell for @p hoisted rotations sharing
     * one decomposition (hoisted == 1 is a plain key switch).
     */
    OpBreakdown keySwitch(KeySwitchMethod method, std::size_t ell,
                          std::size_t hoisted = 1) const;

    /**
     * Variant-aware key-switch cost: the method's breakdown with the
     * dataflow's kernel savings applied (reordered halves the ModDown
     * (I)NTT share, fusion folds the ModDown scale pass — matching
     * the schedules `sim::Lowering` emits per dataflow). Key bytes
     * are dataflow-invariant; only compute changes.
     */
    OpBreakdown keySwitch(const ckks::KeySwitchVariant &variant,
                          std::size_t ell,
                          std::size_t hoisted = 1) const;

    /** HMult = tensor + key switch + rescale. */
    OpBreakdown hmult(KeySwitchMethod method, std::size_t ell) const;

    /** HRot = key switch (+ free automorphism); hoisting-aware. */
    OpBreakdown hrot(KeySwitchMethod method, std::size_t ell,
                     std::size_t hoisted = 1) const;

    /**
     * The paper's 'Quantitative Line' (Fig. 2a): hybrid_ops/KLSS_ops.
     * > 1 means KLSS is more efficient at this level.
     */
    double quantitativeLine(std::size_t ell,
                            std::size_t hoisted = 1) const;

    /** evk bytes needed at level ell (q_bits-packed, both halves). */
    double evkBytes(KeySwitchMethod method, std::size_t ell) const;

    /**
     * evk bytes under Min-KS (ARK [21]): non-hoisted key switches use
     * keys stored at the minimum modulus (one digit group), slashing
     * off-chip traffic. Hoisted rotations need full-level keys.
     */
    double evkBytesMinKs(KeySwitchMethod method) const;

    /**
     * Bytes of the decomposed digit polynomials that stay resident
     * while rotations are hoisted (hybrid: beta extended-basis polys;
     * KLSS: beta alpha'-limb polys over R_T).
     */
    double digitsBytes(KeySwitchMethod method, std::size_t ell) const;

    /** Ciphertext bytes at level ell (two polys, q_bits-packed). */
    double ciphertextBytes(std::size_t ell) const;

    /** @name Seed-expanded evk transfers (AEM EKG, Sec. 5.5).
     * The `a` halves of every evaluation key are pseudorandom, so
     * they can be regenerated on chip from a PRNG seed instead of
     * crossing HBM: a seed-expanded transfer moves the `b` halves
     * plus a seed, and the EKG pays the regeneration compute. */
    ///@{
    /** HBM bytes of a seed-expanded evk at level ell (b halves). */
    double evkSeedExpandedBytes(KeySwitchMethod method,
                                std::size_t ell) const
    {
        return evkBytes(method, ell) / 2.0;
    }
    /** Bytes of the transferred seed material itself (per key). */
    double evkSeedBytes() const { return 64.0; }
    /** Modular ops to regenerate the dropped `a` halves on chip. */
    double evkExpandOps(KeySwitchMethod method, std::size_t ell) const
    {
        // One reduction per regenerated word (PRNG output -> mod q_i).
        return evkBytes(method, ell) / 2.0 / 8.0;
    }
    ///@}

  private:
    OpBreakdown hybridKeySwitch(std::size_t ell,
                                std::size_t hoisted) const;
    OpBreakdown klssKeySwitch(std::size_t ell,
                              std::size_t hoisted) const;

    Config config_;
};

} // namespace fast::cost

#endif // FAST_COST_OPCOUNT_HPP
