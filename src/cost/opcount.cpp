/**
 * @file
 * Implementation of the key-switching op-count models.
 */
#include "cost/opcount.hpp"

#include <cmath>

namespace fast::cost {

OpBreakdown &
OpBreakdown::operator+=(const OpBreakdown &o)
{
    ntt += o.ntt;
    bconv += o.bconv;
    keymult += o.keymult;
    elementwise += o.elementwise;
    return *this;
}

OpBreakdown
OpBreakdown::operator+(const OpBreakdown &o) const
{
    OpBreakdown r = *this;
    r += o;
    return r;
}

OpBreakdown
OpBreakdown::operator*(double f) const
{
    return {ntt * f, bconv * f, keymult * f, elementwise * f};
}

KeySwitchCostModel::KeySwitchCostModel(Config config) : config_(config)
{
}

KeySwitchCostModel
KeySwitchCostModel::fromParams(const ckks::CkksParams &params)
{
    Config c;
    c.degree = params.degree;
    c.q_bits = 36;
    c.alpha = params.alpha;
    c.specials = params.p_chain.size();
    c.klss_alpha = params.alpha;
    c.klss_specials = params.p_chain.size();
    c.digit_bits = params.digit_bits;
    return KeySwitchCostModel(c);
}

double
KeySwitchCostModel::nttOps() const
{
    auto n = static_cast<double>(config_.degree);
    return n / 2.0 * std::log2(n);
}

std::size_t
KeySwitchCostModel::klssAuxLimbs() const
{
    // T must exceed the exact product bound of one group times one
    // 60-bit evk digit plus the convolution growth:
    // alpha*q_bits + v + log2(N * alpha') margin.
    double need = static_cast<double>(config_.klss_alpha) *
                      config_.q_bits +
                  config_.digit_bits +
                  std::log2(static_cast<double>(config_.degree)) + 2;
    return static_cast<std::size_t>(std::ceil(need / 60.0));
}

std::size_t
KeySwitchCostModel::klssOutputGroups(std::size_t ell) const
{
    // Output groups must cover P*Q_ell in v-bit digits per alpha'
    // T-limbs of capacity; one extra group absorbs the carry margin.
    double pq_bits = static_cast<double>(ell + 1 +
                                         config_.klss_specials) *
                     config_.q_bits;
    double cap = static_cast<double>(klssAuxLimbs()) * 60.0;
    // One extra group absorbs the gadget carry margin.
    return static_cast<std::size_t>(std::ceil(pq_bits / cap)) + 1;
}

OpBreakdown
KeySwitchCostModel::hybridKeySwitch(std::size_t ell,
                                    std::size_t hoisted) const
{
    auto n = static_cast<double>(config_.degree);
    double l = static_cast<double>(ell + 1);
    double a = static_cast<double>(config_.alpha);
    double k = static_cast<double>(config_.specials);
    double beta = std::ceil(l / a);
    double h = static_cast<double>(hoisted);

    OpBreakdown ops;
    // ModUp, shared across hoisted rotations: INTT of all l limbs,
    // BConv of each group to the complement + specials, NTT of the
    // converted limbs.
    ops.ntt += l * nttOps();                         // INTT inputs
    ops.ntt += beta * (l + k - a) * nttOps();        // NTT converted
    ops.bconv += l * n;                              // qHatInv scaling
    ops.bconv += beta * n * a * (l + k - a);         // conversion MACs

    // Per rotation: KeyMult over the extended basis (two outputs).
    ops.keymult += h * 2.0 * beta * (l + k) * n;

    // Per rotation: ModDown of both outputs: INTT specials, BConv
    // specials -> q, NTT back, subtract-and-scale.
    ops.ntt += h * 2.0 * (k + l) * nttOps();
    ops.bconv += h * 2.0 * (k * n + n * k * l);
    ops.elementwise += h * 2.0 * l * n;
    return ops;
}

OpBreakdown
KeySwitchCostModel::klssKeySwitch(std::size_t ell,
                                  std::size_t hoisted) const
{
    auto n = static_cast<double>(config_.degree);
    double l = static_cast<double>(ell + 1);
    double a = static_cast<double>(config_.klss_alpha);
    double beta = std::ceil(l / a);
    double ap = static_cast<double>(klssAuxLimbs());
    double bt = static_cast<double>(klssOutputGroups(ell));
    double h = static_cast<double>(hoisted);

    double w = config_.wide_op_weight;  // 60-bit R_T kernels

    OpBreakdown ops;
    // Double decomposition (shared across hoisted rotations): INTT
    // the l input limbs, exact-convert each group into R_T, NTT over
    // the small T basis only — this is where KLSS saves NTT work.
    ops.ntt += l * nttOps();                 // INTT inputs (36-bit)
    ops.ntt += w * beta * ap * nttOps();     // NTT into R_T
    ops.bconv += l * n;                      // scaling stage
    ops.bconv += w * beta * n * a * ap;      // group -> T conversion

    // Per rotation: KeyMult is a beta x beta~ vector-matrix product
    // with alpha' limbs per entry (two output polys) — larger than
    // the hybrid KeyMult, as the paper notes.
    ops.keymult += h * w * 2.0 * beta * bt * ap * n;

    // Per rotation: recover limbs (INTT over T, exact conversion back
    // to P*Q with the ModDown division folded in, NTT of the l
    // output limbs) and the final subtract-and-scale.
    ops.ntt += h * w * 2.0 * bt * ap * nttOps();  // INTT over T
    ops.bconv += h * w * 2.0 * bt * n * ap * a;   // T -> limbs MACs
    ops.ntt += h * 2.0 * l * nttOps();        // NTT recovered (36-bit)
    ops.elementwise += h * 2.0 * l * n;
    return ops;
}

OpBreakdown
KeySwitchCostModel::keySwitch(KeySwitchMethod method, std::size_t ell,
                              std::size_t hoisted) const
{
    return method == KeySwitchMethod::hybrid
               ? hybridKeySwitch(ell, hoisted)
               : klssKeySwitch(ell, hoisted);
}

OpBreakdown
KeySwitchCostModel::keySwitch(const ckks::KeySwitchVariant &variant,
                              std::size_t ell,
                              std::size_t hoisted) const
{
    OpBreakdown ops = keySwitch(variant.method, ell, hoisted);
    switch (variant.dataflow) {
      case ckks::KeySwitchDataflow::standard:
        break;
      case ckks::KeySwitchDataflow::reordered: {
        // CiFlow NTT reordering: the ModDown output transforms merge
        // with the consumer's input transforms. The ModDown (I)NTT is
        // roughly a 2l-limb share of the site's NTT volume; halving
        // it trims the NTT column without touching the others.
        auto n = static_cast<double>(config_.degree);
        double l = static_cast<double>(ell + 1);
        double h = static_cast<double>(std::max<std::size_t>(1, hoisted));
        double moddown_ntt = h * 2.0 * l * nttOps();
        ops.ntt -= std::min(ops.ntt, moddown_ntt / 2.0);
        (void)n;
        break;
      }
      case ckks::KeySwitchDataflow::fused: {
        // ModUp-KeyMult-ModDown fusion: digits stream through the KMU
        // without re-materializing, folding the final ModDown scale
        // pass (2l elementwise mults per pass) into the accumulation.
        auto n = static_cast<double>(config_.degree);
        double l = static_cast<double>(ell + 1);
        double h = static_cast<double>(std::max<std::size_t>(1, hoisted));
        double moddown_scale = h * 2.0 * l * n;
        ops.elementwise -= std::min(ops.elementwise, moddown_scale);
        break;
      }
    }
    return ops;
}

OpBreakdown
KeySwitchCostModel::hmult(KeySwitchMethod method, std::size_t ell) const
{
    auto n = static_cast<double>(config_.degree);
    double l = static_cast<double>(ell + 1);
    OpBreakdown ops = keySwitch(method, ell, 1);
    ops.elementwise += 4.0 * l * n;        // tensor product
    ops.elementwise += 2.0 * (l - 1) * n;  // rescale
    ops.ntt += 2.0 * nttOps();             // rescale tail INTT/NTT
    return ops;
}

OpBreakdown
KeySwitchCostModel::hrot(KeySwitchMethod method, std::size_t ell,
                         std::size_t hoisted) const
{
    return keySwitch(method, ell, hoisted);
}

double
KeySwitchCostModel::quantitativeLine(std::size_t ell,
                                     std::size_t hoisted) const
{
    double hybrid = keySwitch(KeySwitchMethod::hybrid, ell,
                              hoisted).total();
    double klss = keySwitch(KeySwitchMethod::klss, ell,
                            hoisted).total();
    return hybrid / klss;
}

double
KeySwitchCostModel::ciphertextBytes(std::size_t ell) const
{
    return 2.0 * static_cast<double>(ell + 1) *
           static_cast<double>(config_.degree) * config_.q_bits / 8.0;
}

double
KeySwitchCostModel::evkBytes(KeySwitchMethod method,
                             std::size_t ell) const
{
    auto n = static_cast<double>(config_.degree);
    double l = static_cast<double>(ell + 1);
    if (method == KeySwitchMethod::hybrid) {
        double beta = std::ceil(l / static_cast<double>(config_.alpha));
        double limbs = l + static_cast<double>(config_.specials);
        return 2.0 * beta * limbs * n * config_.q_bits / 8.0;
    }
    double beta = std::ceil(l / static_cast<double>(config_.klss_alpha));
    double bt = static_cast<double>(klssOutputGroups(ell));
    double ap = static_cast<double>(klssAuxLimbs());
    return 2.0 * beta * bt * ap * n * 60.0 / 8.0;
}

double
KeySwitchCostModel::evkBytesMinKs(KeySwitchMethod method) const
{
    std::size_t min_level =
        (method == KeySwitchMethod::hybrid ? config_.alpha
                                           : config_.klss_alpha) - 1;
    return evkBytes(method, min_level);
}

double
KeySwitchCostModel::digitsBytes(KeySwitchMethod method,
                                std::size_t ell) const
{
    auto n = static_cast<double>(config_.degree);
    double l = static_cast<double>(ell + 1);
    if (method == KeySwitchMethod::hybrid) {
        double beta = std::ceil(l / static_cast<double>(config_.alpha));
        return beta * (l + config_.specials) * n * config_.q_bits / 8.0;
    }
    double beta = std::ceil(l / static_cast<double>(config_.klss_alpha));
    return beta * static_cast<double>(klssAuxLimbs()) * n * 60.0 / 8.0;
}

} // namespace fast::cost
