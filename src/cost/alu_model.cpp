/**
 * @file
 * Implementation of the ALU scaling model.
 */
#include "cost/alu_model.hpp"

#include <cmath>
#include <stdexcept>

namespace fast::cost {

namespace {

/** Exponent e with (60/36)^e hitting the paper's 60-bit anchor. */
double
exponentFor(double anchor)
{
    return std::log(anchor) / std::log(60.0 / 36.0);
}

double
scale(int bits, double anchor)
{
    if (bits < 8 || bits > 128)
        throw std::invalid_argument("ALU width out of modeled range");
    return std::pow(static_cast<double>(bits) / 36.0,
                    exponentFor(anchor));
}

} // namespace

double
AluCostModel::area(AluKind kind, int bits)
{
    // Fig. 4 anchors: 60-bit / 36-bit area = 2.9 (modmult), 2.8 (mult).
    return scale(bits, kind == AluKind::modular_multiplier ? 2.9 : 2.8);
}

double
AluCostModel::power(AluKind kind, int bits)
{
    // Fig. 4 anchors: 60-bit / 36-bit power = 2.8 (modmult), 2.7 (mult).
    return scale(bits, kind == AluKind::modular_multiplier ? 2.8 : 2.7);
}

double
AluCostModel::tbmAreaVsNative60()
{
    return 1.28;
}

double
AluCostModel::tbmControlOverhead()
{
    return 0.19;
}

double
AluCostModel::booth4x36AreaVsNative60()
{
    return 1.275;
}

int
AluCostModel::tbmParallelism(int bits)
{
    if (bits <= 36)
        return 2;
    if (bits <= 60)
        return 1;
    throw std::invalid_argument("TBM supports widths up to 60 bits");
}

int
AluCostModel::baseMultipliersPerWideProduct(bool karatsuba)
{
    return karatsuba ? 3 : 4;
}

} // namespace fast::cost
