/**
 * @file
 * ALU area/power scaling model (Sec. 3.2, Fig. 4) and the TBM area
 * accounting (Sec. 4.2).
 *
 * The paper synthesizes multipliers and Montgomery modular multipliers
 * at TSMC 7 nm and reports super-linear area/power growth with word
 * length: the 60-bit modular multiplier costs ~2.9x the area and
 * ~2.8x the power of the 36-bit one. We model cost = (bits/36)^e with
 * the exponent calibrated to those anchors, and expose the paper's
 * TBM / Booth-composition comparisons on top.
 */
#ifndef FAST_COST_ALU_MODEL_HPP
#define FAST_COST_ALU_MODEL_HPP

namespace fast::cost {

/** What kind of arithmetic unit is being scaled. */
enum class AluKind {
    multiplier,         ///< integer multiplier only
    modular_multiplier, ///< multiplier + modular reduction
};

/**
 * Relative area/power of word-sized arithmetic units, normalized to
 * the 36-bit configuration of each kind.
 */
class AluCostModel
{
  public:
    /** Relative area of a @p bits-wide unit (36-bit == 1.0). */
    static double area(AluKind kind, int bits);

    /** Relative power of a @p bits-wide unit (36-bit == 1.0). */
    static double power(AluKind kind, int bits);

    /**
     * TBM area relative to one conventional 60-bit multiplier:
     * three 36-bit base multipliers plus combiner/control logic; the
     * paper reports +28% area for 2x 36-bit parallelism (Sec. 4.2).
     */
    static double tbmAreaVsNative60();

    /** TBM control-logic overhead fraction (paper: 19%). */
    static double tbmControlOverhead();

    /**
     * Area of composing one 60-bit multiply from four 36-bit units
     * with a Booth-style scheme, relative to a native 60-bit unit
     * (paper: +27.5%), with a 75% parallelism loss.
     */
    static double booth4x36AreaVsNative60();

    /**
     * 36-bit multiplications a TBM delivers per cycle in 36-bit mode
     * (2) and 60-bit multiplications in 60-bit mode (1).
     */
    static int tbmParallelism(int bits);

    /**
     * Base multipliers needed per 60-bit product: 3 for the TBM's
     * Karatsuba datapath vs 4 for the naive composition — the 33%
     * reduction the paper cites.
     */
    static int baseMultipliersPerWideProduct(bool karatsuba);
};

} // namespace fast::cost

#endif // FAST_COST_ALU_MODEL_HPP
