/**
 * @file
 * Implementation of the minimal unsigned bignum.
 */
#include "math/bignum.hpp"

#include <algorithm>
#include <stdexcept>

namespace fast::math {

BigUInt::BigUInt(u64 v)
{
    if (v)
        words_.push_back(v);
}

BigUInt::BigUInt(std::vector<u64> words) : words_(std::move(words))
{
    normalize();
}

void
BigUInt::normalize()
{
    while (!words_.empty() && words_.back() == 0)
        words_.pop_back();
}

std::size_t
BigUInt::bits() const
{
    if (words_.empty())
        return 0;
    u64 top = words_.back();
    std::size_t b = 0;
    while (top) {
        ++b;
        top >>= 1;
    }
    return (words_.size() - 1) * 64 + b;
}

int
BigUInt::compare(const BigUInt &other) const
{
    if (words_.size() != other.words_.size())
        return words_.size() < other.words_.size() ? -1 : 1;
    for (std::size_t i = words_.size(); i-- > 0;) {
        if (words_[i] != other.words_[i])
            return words_[i] < other.words_[i] ? -1 : 1;
    }
    return 0;
}

BigUInt
BigUInt::operator+(const BigUInt &o) const
{
    std::vector<u64> out(std::max(words_.size(), o.words_.size()) + 1, 0);
    u64 carry = 0;
    for (std::size_t i = 0; i < out.size(); ++i) {
        u128 s = (u128)word(i) + o.word(i) + carry;
        out[i] = static_cast<u64>(s);
        carry = static_cast<u64>(s >> 64);
    }
    return BigUInt(std::move(out));
}

BigUInt
BigUInt::operator-(const BigUInt &o) const
{
    if (*this < o)
        throw std::underflow_error("BigUInt subtraction underflow");
    std::vector<u64> out(words_.size(), 0);
    u64 borrow = 0;
    for (std::size_t i = 0; i < words_.size(); ++i) {
        u128 lhs = words_[i];
        u128 rhs = (u128)o.word(i) + borrow;
        if (lhs >= rhs) {
            out[i] = static_cast<u64>(lhs - rhs);
            borrow = 0;
        } else {
            out[i] = static_cast<u64>((lhs + ((u128)1 << 64)) - rhs);
            borrow = 1;
        }
    }
    return BigUInt(std::move(out));
}

BigUInt
BigUInt::operator*(const BigUInt &o) const
{
    if (isZero() || o.isZero())
        return BigUInt();
    std::vector<u64> out(words_.size() + o.words_.size(), 0);
    for (std::size_t i = 0; i < words_.size(); ++i) {
        u64 carry = 0;
        for (std::size_t j = 0; j < o.words_.size(); ++j) {
            u128 cur = (u128)words_[i] * o.words_[j] + out[i + j] + carry;
            out[i + j] = static_cast<u64>(cur);
            carry = static_cast<u64>(cur >> 64);
        }
        out[i + o.words_.size()] += carry;
    }
    return BigUInt(std::move(out));
}

BigUInt
BigUInt::operator*(u64 o) const
{
    return *this * BigUInt(o);
}

BigUInt
BigUInt::operator<<(std::size_t shift) const
{
    if (isZero())
        return BigUInt();
    std::size_t word_shift = shift / 64;
    std::size_t bit_shift = shift % 64;
    std::vector<u64> out(words_.size() + word_shift + 1, 0);
    for (std::size_t i = 0; i < words_.size(); ++i) {
        out[i + word_shift] |= bit_shift ? (words_[i] << bit_shift)
                                         : words_[i];
        if (bit_shift)
            out[i + word_shift + 1] |= words_[i] >> (64 - bit_shift);
    }
    return BigUInt(std::move(out));
}

BigUInt
BigUInt::operator>>(std::size_t shift) const
{
    std::size_t word_shift = shift / 64;
    std::size_t bit_shift = shift % 64;
    if (word_shift >= words_.size())
        return BigUInt();
    std::vector<u64> out(words_.size() - word_shift, 0);
    for (std::size_t i = 0; i < out.size(); ++i) {
        out[i] = words_[i + word_shift] >> bit_shift;
        if (bit_shift && i + word_shift + 1 < words_.size())
            out[i] |= words_[i + word_shift + 1] << (64 - bit_shift);
    }
    return BigUInt(std::move(out));
}

u64
BigUInt::mod(u64 q) const
{
    u128 r = 0;
    for (std::size_t i = words_.size(); i-- > 0;) {
        r = ((r << 64) | words_[i]) % q;
    }
    return static_cast<u64>(r);
}

std::pair<BigUInt, u64>
BigUInt::divMod(u64 d) const
{
    if (d == 0)
        throw std::invalid_argument("division by zero");
    std::vector<u64> out(words_.size(), 0);
    u128 rem = 0;
    for (std::size_t i = words_.size(); i-- > 0;) {
        u128 cur = (rem << 64) | words_[i];
        out[i] = static_cast<u64>(cur / d);
        rem = cur % d;
    }
    return {BigUInt(std::move(out)), static_cast<u64>(rem)};
}

BigUInt
BigUInt::lowBits(std::size_t bit_count) const
{
    std::size_t full = bit_count / 64;
    std::size_t partial = bit_count % 64;
    std::vector<u64> out;
    for (std::size_t i = 0; i < full && i < words_.size(); ++i)
        out.push_back(words_[i]);
    if (partial && full < words_.size())
        out.push_back(words_[full] & ((u64(1) << partial) - 1));
    return BigUInt(std::move(out));
}

double
BigUInt::toDouble() const
{
    double r = 0;
    for (std::size_t i = words_.size(); i-- > 0;)
        r = r * 18446744073709551616.0 + static_cast<double>(words_[i]);
    return r;
}

std::string
BigUInt::toString() const
{
    if (isZero())
        return "0";
    BigUInt v = *this;
    std::string digits;
    while (!v.isZero()) {
        auto [q, r] = v.divMod(10);
        digits.push_back(static_cast<char>('0' + r));
        v = q;
    }
    std::reverse(digits.begin(), digits.end());
    return digits;
}

BigUInt
BigUInt::productOf(const std::vector<u64> &moduli)
{
    BigUInt p(u64(1));
    for (u64 m : moduli)
        p = p * m;
    return p;
}

} // namespace fast::math
