/**
 * @file
 * Residue Number System bases and base conversion.
 *
 * CKKS decomposes its huge ciphertext modulus Q into a chain of
 * word-sized primes (Sec. 2.1.1); every polynomial is held as one
 * "limb" per prime. This module provides:
 *
 *  - RnsBasis: an ordered set of NTT-friendly primes with the
 *    precomputed CRT constants (Q/q_i mod q_j, (Q/q_i)^-1 mod q_i).
 *  - fastBaseConvert: the approximate HPS base conversion used by
 *    ModUp/ModDown in the hybrid key-switching method; implemented as
 *    the two-stage kernel the FAST BConvU executes (element-wise
 *    scaling, then a matrix-matrix product with the base table,
 *    Sec. 5.3).
 *  - exact CRT composition/decomposition via BigUInt, used by tests
 *    and by the KLSS gadget decomposition.
 */
#ifndef FAST_MATH_RNS_HPP
#define FAST_MATH_RNS_HPP

#include <cstddef>
#include <memory>
#include <vector>

#include "math/align.hpp"
#include "math/bignum.hpp"
#include "math/modarith.hpp"

namespace fast::math {

class KernelEngine;

/**
 * An ordered RNS basis {q_0, ..., q_{k-1}} with CRT precomputation.
 */
class RnsBasis
{
  public:
    /** Build a basis from a list of distinct primes. */
    explicit RnsBasis(std::vector<u64> moduli);

    std::size_t size() const { return moduli_.size(); }
    u64 modulus(std::size_t i) const { return moduli_[i]; }
    const Modulus &modulusObj(std::size_t i) const { return mods_[i]; }
    const std::vector<u64> &moduli() const { return moduli_; }

    /** Product of all moduli. */
    const BigUInt &product() const { return product_; }

    /** (Q/q_i)^-1 mod q_i — the "Q-hat inverse" CRT constant. */
    u64 qHatInv(std::size_t i) const { return q_hat_inv_[i]; }

    /** Q/q_i mod p for an arbitrary external modulus p. */
    u64 qHatMod(std::size_t i, u64 p) const;

    /**
     * A sub-basis formed from moduli [first, first+count). CRT
     * constants are recomputed for the sub-product.
     */
    RnsBasis subBasis(std::size_t first, std::size_t count) const;

    /**
     * Exact CRT composition of residues (one per modulus) into the
     * canonical representative in [0, Q).
     */
    BigUInt compose(const std::vector<u64> &residues) const;

    /** Decompose a value in [0, Q) into residues. */
    std::vector<u64> decompose(const BigUInt &value) const;

  private:
    std::vector<u64> moduli_;
    std::vector<Modulus> mods_;
    BigUInt product_;
    std::vector<u64> q_hat_inv_;
    std::vector<BigUInt> q_hat_;  ///< Q/q_i as big integers
};

/**
 * Precomputed table for fast (approximate) base conversion from basis
 * Q to basis P: conv(x)_j = sum_i [x_i * qHatInv_i]_{q_i} * (Q/q_i)
 * mod p_j. The result may differ from the exact conversion by a small
 * multiple of Q (the classic HPS "approximation error"), which the
 * CKKS algorithms tolerate by construction.
 */
class BaseConverter
{
  public:
    BaseConverter(const RnsBasis &from, const RnsBasis &to);

    const RnsBasis &from() const { return from_; }
    const RnsBasis &to() const { return to_; }

    /**
     * Convert one coefficient vector: input residues in basis `from`
     * (size from.size()), output residues in basis `to`.
     */
    std::vector<u64> convert(const std::vector<u64> &in) const;

    /**
     * Batched whole-polynomial conversion: `in` holds from.size()
     * limb pointers (each @p n coefficients in coefficient form),
     * `out` holds to.size() destination limb pointers. The coefficient
     * range is split across the engine's blocks; per-coefficient
     * results are bit-identical to convert() for any thread count and
     * SIMD path. This is the limb x block form of the BConvU kernel,
     * run as a two-phase tile pipeline through the dispatched SIMD
     * table: phase A Shoup-scales a cache-resident tile of every input
     * limb, phase B runs the 128-bit lane inner product per output
     * limb against the transposed base table.
     */
    void convertPoly(const std::vector<const u64 *> &in, std::size_t n,
                     const std::vector<u64 *> &out,
                     KernelEngine &engine) const;

    /**
     * Stage 1 of the hardware kernel: element-wise scaling
     * y_i = [x_i * qHatInv_i] mod q_i.
     */
    void scaleInputs(const std::vector<u64> &in,
                     std::vector<u64> &scaled) const;

    /**
     * Stage 2 of the hardware kernel: out_j = sum_i scaled_i *
     * baseTable(i, j) mod p_j. This is the matrix product the BConvU
     * systolic array computes.
     */
    void accumulate(const std::vector<u64> &scaled,
                    std::vector<u64> &out) const;

    /** Base-table entry (Q/q_i mod p_j). */
    u64 baseTable(std::size_t i, std::size_t j) const
    {
        return base_table_[i * to_.size() + j];
    }

  private:
    RnsBasis from_;
    RnsBasis to_;
    std::vector<u64> base_table_;  ///< row-major (from x to)
    /**
     * The same table transposed ([j*k + i] = Q/q_i mod p_j) so the
     * batched kernel's per-output-limb inner product reads its column
     * contiguously (64-byte aligned rows via math/align.hpp).
     */
    AlignedU64 col_table_;
    std::vector<u64> scale_shoup_; ///< Shoup constants for qHatInv_i
    /**
     * Terms between congruence-preserving folds in the batched inner
     * product: the largest count such that fold_every * max_term +
     * (p - 1) cannot wrap a 128-bit accumulator. When the whole
     * k-term sum fits (the common case) this is k + 1 so the guard
     * never fires inside the loop.
     */
    std::size_t fold_every_;
    /**
     * Exclusive upper bound on scaled inputs (the largest from-
     * modulus); lets narrow-operand kernels (AVX-512 IFMA) engage.
     */
    u64 from_max_ = 0;
};

} // namespace fast::math

#endif // FAST_MATH_RNS_HPP
