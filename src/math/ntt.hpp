/**
 * @file
 * Negacyclic Number-Theoretic Transform.
 *
 * The NTT converts polynomials in Z_q[X]/(X^N + 1) between coefficient
 * and evaluation ("slot point") representation so that polynomial
 * multiplication becomes element-wise (Sec. 2.1.2). This is the single
 * hottest kernel in CKKS and the unit the FAST NTTU accelerates
 * (Sec. 5.2). The implementation uses the standard merged-twiddle
 * Cooley-Tukey forward / Gentleman-Sande inverse butterflies with
 * Shoup-precomputed root tables, i.e. (N/2)·log2(N) modular
 * multiplications per transform — the exact count the cost model and
 * the NTTU cycle model assume.
 *
 * Two implementations are provided per direction:
 *  - forward()/inverse(): batched butterflies with lazy (2q-delayed)
 *    reduction (Harvey style) — values ride in [0, 4q) between stages
 *    and are canonicalized once at the end. Output is bit-identical to
 *    the strict path.
 *  - forwardReference()/inverseReference(): the strict per-butterfly
 *    reduction path, kept as the scalar baseline for the equivalence
 *    tests and bench/kernels speedup reporting.
 * Plus forwardParallel()/inverseParallel(), which split the butterfly
 * stages across coefficient blocks on a KernelEngine: upper stages
 * (group count < block count) are barriered per stage, lower stages
 * run block-local — the same limb x block decomposition the NTTU's
 * lane clusters use.
 *
 * All butterfly inner loops execute through the runtime-dispatched
 * SIMD kernel tables (math/simd.hpp); every path is bit-identical to
 * the scalar reference for any ISA and thread count. Ring degrees at
 * or above kTenStepMinN additionally use a cache-blocked ten-step
 * decomposition (forwardTenStep/inverseTenStep): the strided upper
 * stages are gathered into L1-sized column tiles so their butterflies
 * stream contiguously instead of striding n/2 apart.
 */
#ifndef FAST_MATH_NTT_HPP
#define FAST_MATH_NTT_HPP

#include <cstddef>
#include <memory>
#include <vector>

#include "math/align.hpp"
#include "math/modarith.hpp"

namespace fast::math {

class KernelEngine;

/**
 * Precomputed tables for the negacyclic NTT over one prime modulus.
 * Construction is O(N); transforms are O(N log N).
 */
class NttTables
{
  public:
    /**
     * Build tables for ring degree @p n (power of two) and prime @p q
     * with q = 1 mod 2n.
     */
    NttTables(std::size_t n, u64 q);

    std::size_t degree() const { return n_; }
    u64 modulus() const { return q_; }

    /** In-place forward NTT: coefficient order in, bit-reversed out. */
    void forward(u64 *data) const;

    /** In-place inverse NTT: bit-reversed in, coefficient order out. */
    void inverse(u64 *data) const;

    /**
     * Block-parallel transforms on @p engine. Bit-identical to the
     * serial path for any thread count (static power-of-two block
     * partition; every butterfly computes the same values).
     */
    void forwardParallel(u64 *data, KernelEngine &engine) const;
    void inverseParallel(u64 *data, KernelEngine &engine) const;

    /** Strict-reduction scalar baselines (the seed implementation). */
    void forwardReference(u64 *data) const;
    void inverseReference(u64 *data) const;

    /**
     * Cache-blocked ten-step transforms. The n1 x n2 matrix view
     * (n2 = kTenStepChunk) turns the strided upper stages into
     * column-tile butterflies on an L1-resident scratch tile and the
     * remaining stages into contiguous chunk-local sub-transforms.
     * Bit-identical to forward()/inverse(); requires
     * n >= 2 * kTenStepChunk. Pass @p engine to parallelize over
     * tiles/chunks, nullptr to run serially. forward()/inverse() and
     * the parallel variants select this path automatically for
     * n >= kTenStepMinN.
     */
    void forwardTenStep(u64 *data, KernelEngine *engine) const;
    void inverseTenStep(u64 *data, KernelEngine *engine) const;

    /** Coefficients per ten-step chunk (n2). */
    static constexpr std::size_t kTenStepChunk = std::size_t(1) << 13;
    /** Minimum ring degree at which transforms go ten-step. */
    static constexpr std::size_t kTenStepMinN = std::size_t(1) << 16;

    /** Convenience overloads operating on whole vectors. */
    void forward(std::vector<u64> &data) const { forward(data.data()); }
    void inverse(std::vector<u64> &data) const { inverse(data.data()); }
    void forward(AlignedU64 &data) const { forward(data.data()); }
    void inverse(AlignedU64 &data) const { inverse(data.data()); }

    /** Modular multiplications consumed by one transform. */
    static std::size_t multCount(std::size_t n);

  private:
    std::size_t blockCount(KernelEngine &engine) const;

    std::size_t n_;
    int log_n_;
    u64 q_;
    u64 n_inv_;          ///< N^-1 mod q for the inverse transform
    u64 n_inv_shoup_;
    // 64-byte-aligned so the vector kernels' twiddle loads never
    // straddle cache lines (math/align.hpp layout contract).
    AlignedU64 roots_;          ///< psi powers, bit-rev order
    AlignedU64 roots_shoup_;
    AlignedU64 inv_roots_;      ///< psi^-1 powers, bit-rev order
    AlignedU64 inv_roots_shoup_;
};

/**
 * Shared cache of NTT tables keyed by (degree, modulus). Parameter
 * setup constructs tables once; evaluators and the simulator's
 * functional checks all reuse them. Lookups take a shared (reader)
 * lock so concurrent hot-path probes never serialize; only the first
 * construction of a table takes the exclusive lock.
 */
class NttTableCache
{
  public:
    /** Get or build tables for (n, q). */
    static std::shared_ptr<const NttTables> get(std::size_t n, u64 q);
};

/**
 * A context-owned, pre-built table array indexed by limb position —
 * the hot paths index this O(1) instead of probing the global cache
 * map per call. Immutable after construction, so it is shared freely
 * across the engine's worker threads without locking.
 */
class NttTableSet
{
  public:
    NttTableSet() = default;

    /** Build (via the shared cache) tables for every modulus. */
    NttTableSet(std::size_t n, const std::vector<u64> &moduli);

    std::size_t size() const { return tables_.size(); }

    /** Table for the limb at position @p i in the modulus list. */
    const NttTables &operator[](std::size_t i) const
    {
        return *tables_[i];
    }

    /** Table for modulus @p q, or nullptr when absent. */
    const NttTables *find(u64 q) const;

    /** Table for modulus @p q; throws std::out_of_range if absent. */
    const NttTables &forModulus(u64 q) const;

  private:
    std::vector<std::shared_ptr<const NttTables>> tables_;
    /** (modulus, index) pairs sorted by modulus for O(log k) find. */
    std::vector<std::pair<u64, std::size_t>> by_modulus_;
};

} // namespace fast::math

#endif // FAST_MATH_NTT_HPP
