/**
 * @file
 * Negacyclic Number-Theoretic Transform.
 *
 * The NTT converts polynomials in Z_q[X]/(X^N + 1) between coefficient
 * and evaluation ("slot point") representation so that polynomial
 * multiplication becomes element-wise (Sec. 2.1.2). This is the single
 * hottest kernel in CKKS and the unit the FAST NTTU accelerates
 * (Sec. 5.2). The implementation uses the standard merged-twiddle
 * Cooley-Tukey forward / Gentleman-Sande inverse butterflies with
 * Shoup-precomputed root tables, i.e. (N/2)·log2(N) modular
 * multiplications per transform — the exact count the cost model and
 * the NTTU cycle model assume.
 */
#ifndef FAST_MATH_NTT_HPP
#define FAST_MATH_NTT_HPP

#include <cstddef>
#include <memory>
#include <vector>

#include "math/modarith.hpp"

namespace fast::math {

/**
 * Precomputed tables for the negacyclic NTT over one prime modulus.
 * Construction is O(N); transforms are O(N log N).
 */
class NttTables
{
  public:
    /**
     * Build tables for ring degree @p n (power of two) and prime @p q
     * with q = 1 mod 2n.
     */
    NttTables(std::size_t n, u64 q);

    std::size_t degree() const { return n_; }
    u64 modulus() const { return q_; }

    /** In-place forward NTT: coefficient order in, bit-reversed out. */
    void forward(u64 *data) const;

    /** In-place inverse NTT: bit-reversed in, coefficient order out. */
    void inverse(u64 *data) const;

    /** Convenience overloads operating on whole vectors. */
    void forward(std::vector<u64> &data) const { forward(data.data()); }
    void inverse(std::vector<u64> &data) const { inverse(data.data()); }

    /** Modular multiplications consumed by one transform. */
    static std::size_t multCount(std::size_t n);

  private:
    std::size_t n_;
    int log_n_;
    u64 q_;
    u64 n_inv_;          ///< N^-1 mod q for the inverse transform
    u64 n_inv_shoup_;
    std::vector<u64> roots_;          ///< psi powers, bit-rev order
    std::vector<u64> roots_shoup_;
    std::vector<u64> inv_roots_;      ///< psi^-1 powers, bit-rev order
    std::vector<u64> inv_roots_shoup_;
};

/**
 * Shared cache of NTT tables keyed by (degree, modulus). Parameter
 * setup constructs tables once; evaluators and the simulator's
 * functional checks all reuse them.
 */
class NttTableCache
{
  public:
    /** Get or build tables for (n, q). */
    static std::shared_ptr<const NttTables> get(std::size_t n, u64 q);
};

} // namespace fast::math

#endif // FAST_MATH_NTT_HPP
