/**
 * @file
 * Implementation of RNS bases and base conversion.
 */
#include "math/rns.hpp"

#include <algorithm>
#include <stdexcept>

#include "math/parallel.hpp"
#include "math/simd.hpp"
#include "obs/trace.hpp"

namespace fast::math {

namespace {

/** Minimum coefficients per block for the batched BConv kernel. */
constexpr std::size_t kMinBConvBlock = 512;

/**
 * Coefficients per convertPoly tile. One tile of scaled inputs is
 * k * 512 * 8 bytes (64 KiB at k = 16), sized so phase B's k passes
 * over it stay cache-resident.
 */
constexpr std::size_t kBConvTile = 512;

} // namespace

RnsBasis::RnsBasis(std::vector<u64> moduli) : moduli_(std::move(moduli))
{
    if (moduli_.empty())
        throw std::invalid_argument("RNS basis cannot be empty");
    mods_.reserve(moduli_.size());
    for (u64 q : moduli_)
        mods_.emplace_back(q);
    product_ = BigUInt::productOf(moduli_);
    q_hat_inv_.resize(moduli_.size());
    q_hat_.resize(moduli_.size());
    for (std::size_t i = 0; i < moduli_.size(); ++i) {
        auto [q_hat, rem] = product_.divMod(moduli_[i]);
        if (rem != 0)
            throw std::invalid_argument("duplicate modulus in basis");
        q_hat_[i] = q_hat;
        q_hat_inv_[i] = invMod(q_hat.mod(moduli_[i]), moduli_[i]);
    }
}

u64
RnsBasis::qHatMod(std::size_t i, u64 p) const
{
    return q_hat_[i].mod(p);
}

RnsBasis
RnsBasis::subBasis(std::size_t first, std::size_t count) const
{
    if (first + count > moduli_.size())
        throw std::out_of_range("subBasis range");
    std::vector<u64> sub(moduli_.begin() + first,
                         moduli_.begin() + first + count);
    return RnsBasis(std::move(sub));
}

BigUInt
RnsBasis::compose(const std::vector<u64> &residues) const
{
    if (residues.size() != moduli_.size())
        throw std::invalid_argument("residue count mismatch");
    // x = sum_i [x_i * qHatInv_i]_{q_i} * (Q / q_i)  mod Q
    BigUInt acc;
    for (std::size_t i = 0; i < moduli_.size(); ++i) {
        u64 t = mulMod(residues[i] % moduli_[i], q_hat_inv_[i], moduli_[i]);
        acc = acc + q_hat_[i] * t;
    }
    // Reduce mod Q: acc < Q * k with k <= basis size, so subtract.
    while (acc >= product_)
        acc = acc - product_;
    return acc;
}

std::vector<u64>
RnsBasis::decompose(const BigUInt &value) const
{
    std::vector<u64> out(moduli_.size());
    for (std::size_t i = 0; i < moduli_.size(); ++i)
        out[i] = value.mod(moduli_[i]);
    return out;
}

BaseConverter::BaseConverter(const RnsBasis &from, const RnsBasis &to)
    : from_(from), to_(to)
{
    base_table_.resize(from_.size() * to_.size());
    for (std::size_t i = 0; i < from_.size(); ++i)
        for (std::size_t j = 0; j < to_.size(); ++j)
            base_table_[i * to_.size() + j] =
                from_.qHatMod(i, to_.modulus(j));
    col_table_.resize(base_table_.size());
    for (std::size_t j = 0; j < to_.size(); ++j)
        for (std::size_t i = 0; i < from_.size(); ++i)
            col_table_[j * from_.size() + i] = baseTable(i, j);
    scale_shoup_.resize(from_.size());
    for (std::size_t i = 0; i < from_.size(); ++i)
        scale_shoup_[i] =
            shoupPrecompute(from_.qHatInv(i), from_.modulus(i));

    // Largest number of inner-product terms that cannot wrap a 128-bit
    // accumulator holding a residue < p plus that many full-width
    // products. With < 2^62 moduli this is >= 15, so folds are rare.
    u64 max_from =
        *std::max_element(from_.moduli().begin(), from_.moduli().end());
    u64 max_to =
        *std::max_element(to_.moduli().begin(), to_.moduli().end());
    u128 max_term = (u128)(max_from - 1) * (max_to - 1);
    u128 cap = (~u128(0) - (max_to - 1)) / max_term;
    // When the whole k-term sum fits (the common case), pick a period
    // past k so the guard never fires inside the loop.
    fold_every_ = cap > from_.size()
                      ? from_.size() + 1
                      : std::max<std::size_t>(
                            1, static_cast<std::size_t>(cap));
    from_max_ = max_from;
}

void
BaseConverter::scaleInputs(const std::vector<u64> &in,
                           std::vector<u64> &scaled) const
{
    scaled.resize(from_.size());
    for (std::size_t i = 0; i < from_.size(); ++i)
        scaled[i] = mulModShoup(in[i], from_.qHatInv(i),
                                scale_shoup_[i], from_.modulus(i));
}

void
BaseConverter::accumulate(const std::vector<u64> &scaled,
                          std::vector<u64> &out) const
{
    out.assign(to_.size(), 0);
    for (std::size_t j = 0; j < to_.size(); ++j) {
        const Modulus &pj = to_.modulusObj(j);
        u128 acc = 0;
        for (std::size_t i = 0; i < from_.size(); ++i) {
            acc += (u128)scaled[i] * baseTable(i, j);
            // Lazy reduction: fold when the accumulator nears 2^127 to
            // mirror the BConvU's bottom-row modular reduction step.
            if ((acc >> 120) != 0)
                acc = acc % pj.value();
        }
        out[j] = static_cast<u64>(acc % pj.value());
    }
}

std::vector<u64>
BaseConverter::convert(const std::vector<u64> &in) const
{
    if (in.size() != from_.size())
        throw std::invalid_argument("BaseConverter input size mismatch");
    std::vector<u64> scaled;
    scaleInputs(in, scaled);
    std::vector<u64> out;
    accumulate(scaled, out);
    return out;
}

void
BaseConverter::convertPoly(const std::vector<const u64 *> &in,
                           std::size_t n,
                           const std::vector<u64 *> &out,
                           KernelEngine &engine) const
{
    if (in.size() != from_.size() || out.size() != to_.size())
        throw std::invalid_argument("convertPoly limb count mismatch");
    const std::size_t k = from_.size();
    const std::size_t l = to_.size();
    FAST_OBS_COUNT("bconv.convert_poly", 1);
    FAST_OBS_SPAN_VAR(span, "bconv.convert_poly");
    FAST_OBS_SPAN_ARG(span, "n", static_cast<std::uint64_t>(n));
    FAST_OBS_SPAN_ARG(span, "from_limbs",
                      static_cast<std::uint64_t>(k));
    FAST_OBS_SPAN_ARG(span, "to_limbs", static_cast<std::uint64_t>(l));
    const SimdOps &ops = simdOps();
    std::size_t blocks = KernelEngine::blocksFor(
        n, engine.threadCount(), kMinBConvBlock);
    engine.parallelFor(blocks, [&](std::size_t b0, std::size_t b1) {
        std::size_t c0 = n * b0 / blocks;
        std::size_t c1 = n * b1 / blocks;
        // Two-phase tile pipeline (the BConvU dataflow, Sec. 5.3):
        // phase A Shoup-scales a tile of every input limb into a
        // cache-resident scratch block, phase B runs the inner product
        // for each output limb over that block. The fold schedule is
        // fixed (fold_every_) rather than data-dependent, and the
        // final reduction is canonical, so results are bit-identical
        // to convert() on every SIMD path.
        thread_local AlignedU64 scratch;
        if (scratch.size() < k * kBConvTile)
            scratch.resize(k * kBConvTile);
        std::vector<const u64 *> rows(k);
        for (std::size_t i = 0; i < k; ++i)
            rows[i] = scratch.data() + i * kBConvTile;
        for (std::size_t c = c0; c < c1; c += kBConvTile) {
            const std::size_t len = std::min(kBConvTile, c1 - c);
            for (std::size_t i = 0; i < k; ++i)
                ops.mul_shoup_strict(in[i] + c,
                                     scratch.data() + i * kBConvTile,
                                     len, from_.qHatInv(i),
                                     scale_shoup_[i],
                                     from_.modulus(i));
            for (std::size_t j = 0; j < l; ++j)
                ops.bconv_acc(rows.data(), k,
                              col_table_.data() + j * k, len,
                              to_.modulusObj(j), fold_every_,
                              from_max_, out[j] + c);
        }
    });
}

} // namespace fast::math
