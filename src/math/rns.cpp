/**
 * @file
 * Implementation of RNS bases and base conversion.
 */
#include "math/rns.hpp"

#include <stdexcept>

#include "math/parallel.hpp"
#include "obs/trace.hpp"

namespace fast::math {

namespace {

/** Minimum coefficients per block for the batched BConv kernel. */
constexpr std::size_t kMinBConvBlock = 512;

} // namespace

RnsBasis::RnsBasis(std::vector<u64> moduli) : moduli_(std::move(moduli))
{
    if (moduli_.empty())
        throw std::invalid_argument("RNS basis cannot be empty");
    mods_.reserve(moduli_.size());
    for (u64 q : moduli_)
        mods_.emplace_back(q);
    product_ = BigUInt::productOf(moduli_);
    q_hat_inv_.resize(moduli_.size());
    q_hat_.resize(moduli_.size());
    for (std::size_t i = 0; i < moduli_.size(); ++i) {
        auto [q_hat, rem] = product_.divMod(moduli_[i]);
        if (rem != 0)
            throw std::invalid_argument("duplicate modulus in basis");
        q_hat_[i] = q_hat;
        q_hat_inv_[i] = invMod(q_hat.mod(moduli_[i]), moduli_[i]);
    }
}

u64
RnsBasis::qHatMod(std::size_t i, u64 p) const
{
    return q_hat_[i].mod(p);
}

RnsBasis
RnsBasis::subBasis(std::size_t first, std::size_t count) const
{
    if (first + count > moduli_.size())
        throw std::out_of_range("subBasis range");
    std::vector<u64> sub(moduli_.begin() + first,
                         moduli_.begin() + first + count);
    return RnsBasis(std::move(sub));
}

BigUInt
RnsBasis::compose(const std::vector<u64> &residues) const
{
    if (residues.size() != moduli_.size())
        throw std::invalid_argument("residue count mismatch");
    // x = sum_i [x_i * qHatInv_i]_{q_i} * (Q / q_i)  mod Q
    BigUInt acc;
    for (std::size_t i = 0; i < moduli_.size(); ++i) {
        u64 t = mulMod(residues[i] % moduli_[i], q_hat_inv_[i], moduli_[i]);
        acc = acc + q_hat_[i] * t;
    }
    // Reduce mod Q: acc < Q * k with k <= basis size, so subtract.
    while (acc >= product_)
        acc = acc - product_;
    return acc;
}

std::vector<u64>
RnsBasis::decompose(const BigUInt &value) const
{
    std::vector<u64> out(moduli_.size());
    for (std::size_t i = 0; i < moduli_.size(); ++i)
        out[i] = value.mod(moduli_[i]);
    return out;
}

BaseConverter::BaseConverter(const RnsBasis &from, const RnsBasis &to)
    : from_(from), to_(to)
{
    base_table_.resize(from_.size() * to_.size());
    for (std::size_t i = 0; i < from_.size(); ++i)
        for (std::size_t j = 0; j < to_.size(); ++j)
            base_table_[i * to_.size() + j] =
                from_.qHatMod(i, to_.modulus(j));
    scale_shoup_.resize(from_.size());
    for (std::size_t i = 0; i < from_.size(); ++i)
        scale_shoup_[i] =
            shoupPrecompute(from_.qHatInv(i), from_.modulus(i));
}

void
BaseConverter::scaleInputs(const std::vector<u64> &in,
                           std::vector<u64> &scaled) const
{
    scaled.resize(from_.size());
    for (std::size_t i = 0; i < from_.size(); ++i)
        scaled[i] = mulModShoup(in[i], from_.qHatInv(i),
                                scale_shoup_[i], from_.modulus(i));
}

void
BaseConverter::accumulate(const std::vector<u64> &scaled,
                          std::vector<u64> &out) const
{
    out.assign(to_.size(), 0);
    for (std::size_t j = 0; j < to_.size(); ++j) {
        const Modulus &pj = to_.modulusObj(j);
        u128 acc = 0;
        for (std::size_t i = 0; i < from_.size(); ++i) {
            acc += (u128)scaled[i] * baseTable(i, j);
            // Lazy reduction: fold when the accumulator nears 2^127 to
            // mirror the BConvU's bottom-row modular reduction step.
            if ((acc >> 120) != 0)
                acc = acc % pj.value();
        }
        out[j] = static_cast<u64>(acc % pj.value());
    }
}

std::vector<u64>
BaseConverter::convert(const std::vector<u64> &in) const
{
    if (in.size() != from_.size())
        throw std::invalid_argument("BaseConverter input size mismatch");
    std::vector<u64> scaled;
    scaleInputs(in, scaled);
    std::vector<u64> out;
    accumulate(scaled, out);
    return out;
}

void
BaseConverter::convertPoly(const std::vector<const u64 *> &in,
                           std::size_t n,
                           const std::vector<u64 *> &out,
                           KernelEngine &engine) const
{
    if (in.size() != from_.size() || out.size() != to_.size())
        throw std::invalid_argument("convertPoly limb count mismatch");
    const std::size_t k = from_.size();
    const std::size_t l = to_.size();
    FAST_OBS_COUNT("bconv.convert_poly", 1);
    FAST_OBS_SPAN_VAR(span, "bconv.convert_poly");
    FAST_OBS_SPAN_ARG(span, "n", static_cast<std::uint64_t>(n));
    FAST_OBS_SPAN_ARG(span, "from_limbs",
                      static_cast<std::uint64_t>(k));
    FAST_OBS_SPAN_ARG(span, "to_limbs", static_cast<std::uint64_t>(l));
    std::size_t blocks = KernelEngine::blocksFor(
        n, engine.threadCount(), kMinBConvBlock);
    engine.parallelFor(blocks, [&](std::size_t b0, std::size_t b1) {
        std::size_t c0 = n * b0 / blocks;
        std::size_t c1 = n * b1 / blocks;
        std::vector<u64> scaled(k);
        for (std::size_t c = c0; c < c1; ++c) {
            for (std::size_t i = 0; i < k; ++i)
                scaled[i] = mulModShoup(in[i][c], from_.qHatInv(i),
                                        scale_shoup_[i],
                                        from_.modulus(i));
            for (std::size_t j = 0; j < l; ++j) {
                const Modulus &pj = to_.modulusObj(j);
                u128 acc = 0;
                for (std::size_t i = 0; i < k; ++i) {
                    acc += (u128)scaled[i] * baseTable(i, j);
                    // Same lazy fold as accumulate() so the batched
                    // kernel stays bit-identical to convert().
                    if ((acc >> 120) != 0)
                        acc = acc % pj.value();
                }
                out[j][c] = static_cast<u64>(acc % pj.value());
            }
        }
    });
}

} // namespace fast::math
