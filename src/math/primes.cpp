/**
 * @file
 * Implementation of prime generation for NTT-friendly moduli chains.
 */
#include "math/primes.hpp"

#include <stdexcept>

namespace fast::math {

namespace {

/** One Miller-Rabin round with witness a; n - 1 = d * 2^r, d odd. */
bool
millerRabinRound(u64 n, u64 a, u64 d, int r)
{
    a %= n;
    if (a == 0)
        return true;
    u64 x = powMod(a, d, n);
    if (x == 1 || x == n - 1)
        return true;
    for (int i = 1; i < r; ++i) {
        x = mulMod(x, x, n);
        if (x == n - 1)
            return true;
    }
    return false;
}

} // namespace

bool
isPrime(u64 n)
{
    if (n < 2)
        return false;
    for (u64 p : {2ull, 3ull, 5ull, 7ull, 11ull, 13ull, 17ull, 19ull,
                  23ull, 29ull, 31ull, 37ull}) {
        if (n == p)
            return true;
        if (n % p == 0)
            return false;
    }
    u64 d = n - 1;
    int r = 0;
    while ((d & 1) == 0) {
        d >>= 1;
        ++r;
    }
    // This witness set is deterministic for all n < 2^64.
    for (u64 a : {2ull, 3ull, 5ull, 7ull, 11ull, 13ull, 17ull, 19ull,
                  23ull, 29ull, 31ull, 37ull}) {
        if (!millerRabinRound(n, a, d, r))
            return false;
    }
    return true;
}

std::vector<u64>
generateNttPrimes(int bit_size, std::size_t ring_degree, std::size_t count,
                  std::size_t skip)
{
    if (bit_size < 20 || bit_size > 61)
        throw std::invalid_argument("prime bit size out of range [20, 61]");
    u64 step = 2 * static_cast<u64>(ring_degree);
    // Start at the largest candidate = 1 mod 2N strictly below 2^bit_size.
    u64 upper = u64(1) << bit_size;
    u64 candidate = upper - (upper % step) + 1;
    while (candidate >= upper)
        candidate -= step;

    std::vector<u64> primes;
    primes.reserve(count);
    while (primes.size() < count) {
        if (candidate < (u64(1) << (bit_size - 1)))
            throw std::runtime_error("ran out of primes for bit size");
        if (isPrime(candidate)) {
            if (skip > 0)
                --skip;
            else
                primes.push_back(candidate);
        }
        candidate -= step;
    }
    return primes;
}

u64
primitiveRoot(u64 q)
{
    // Factor q - 1 by trial division (moduli are word-sized, and this
    // runs only at parameter setup time).
    u64 phi = q - 1;
    std::vector<u64> factors;
    u64 m = phi;
    for (u64 p = 2; p * p <= m; p += (p == 2 ? 1 : 2)) {
        if (m % p == 0) {
            factors.push_back(p);
            while (m % p == 0)
                m /= p;
        }
    }
    if (m > 1)
        factors.push_back(m);

    for (u64 g = 2; g < q; ++g) {
        bool ok = true;
        for (u64 f : factors) {
            if (powMod(g, phi / f, q) == 1) {
                ok = false;
                break;
            }
        }
        if (ok)
            return g;
    }
    throw std::runtime_error("no primitive root found (q not prime?)");
}

u64
minimalPrimitiveRoot2N(u64 q, std::size_t ring_degree)
{
    u64 order = 2 * static_cast<u64>(ring_degree);
    if ((q - 1) % order != 0)
        throw std::invalid_argument("q != 1 mod 2N");
    u64 g = primitiveRoot(q);
    u64 psi = powMod(g, (q - 1) / order, q);
    // psi has order exactly 2N because g is a primitive root. Find the
    // smallest such root for reproducibility across runs.
    u64 best = psi;
    u64 current = psi;
    u64 psi_sq = mulMod(psi, psi, q);
    for (u64 i = 1; i < static_cast<u64>(ring_degree); ++i) {
        // Odd powers of psi are exactly the primitive 2N-th roots.
        current = mulMod(current, psi_sq, q);
        if (current < best)
            best = current;
    }
    return best;
}

} // namespace fast::math
