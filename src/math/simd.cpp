/**
 * @file
 * SIMD dispatch and the scalar kernel table.
 *
 * The scalar table is the semantic reference: its kernels are the
 * exact inner loops the pre-SIMD ntt.cpp / rns.cpp / poly.cpp ran.
 * Dispatch resolves once (FAST_SIMD override, else widest CPU-
 * supported compiled-in ISA) and publishes the table through an
 * atomic pointer; setSimdIsa() swaps it for tests and benches.
 */
#include "math/simd.hpp"

#include <atomic>
#include <cstdlib>
#include <cstring>

#include "math/simd_common.hpp"

namespace fast::math {

namespace {

using namespace simd_detail;

struct ScalarKernels {
    static constexpr std::size_t kLanes = 1;
    static void ct(u64 *data, std::size_t j1, std::size_t len,
                   std::size_t t, u64 w, u64 wp, u64 q, u64 two_q)
    {
        scalarCtButterflies(data, j1, len, t, w, wp, q, two_q);
    }
    static void gs(u64 *data, std::size_t j1, std::size_t len,
                   std::size_t t, u64 w, u64 wp, u64 q, u64 two_q)
    {
        scalarGsButterflies(data, j1, len, t, w, wp, q, two_q);
    }
    // t >= kLanes == 1 always holds, so these are never reached.
    static bool ctSmall(u64 *, std::size_t, std::size_t, std::size_t,
                        const u64 *, const u64 *, u64, u64)
    {
        return false;
    }
    static bool gsSmall(u64 *, std::size_t, std::size_t, std::size_t,
                        const u64 *, const u64 *, u64, u64)
    {
        return false;
    }
};

void
scalarNttFwdTail(u64 *data, std::size_t n, std::size_t first_m,
                 std::size_t block, std::size_t nblocks, const u64 *w,
                 const u64 *wp, u64 q)
{
    nttFwdTail<ScalarKernels>(data, n, first_m, block, nblocks, w, wp,
                              q);
}

void
scalarNttInvHead(u64 *data, std::size_t n, std::size_t last_m,
                 std::size_t block, std::size_t nblocks, const u64 *w,
                 const u64 *wp, u64 q)
{
    nttInvHead<ScalarKernels>(data, n, last_m, block, nblocks, w, wp,
                              q);
}

} // namespace

namespace simd_detail {

const SimdOps kScalarOps = {
    SimdIsa::scalar,
    "scalar",
    &scalarCtButterflies,
    &scalarGsButterflies,
    &scalarNttFwdTail,
    &scalarNttInvHead,
    &scalarCanonFrom4q,
    &scalarScaleShoupCanon,
    &scalarMulShoupStrict,
    &scalarAddModVec,
    &scalarSubModVec,
    &scalarNegModVec,
    &scalarMulModVec,
    &scalarBconvAcc,
};

} // namespace simd_detail

namespace {

const SimdOps *
tableFor(SimdIsa isa)
{
    switch (isa) {
    case SimdIsa::avx512:
#ifdef FAST_SIMD_HAVE_AVX512
#ifdef FAST_SIMD_HAVE_AVX512IFMA
        // Same tier, faster kernels: 52-bit vpmadd52 Shoup/BConv with
        // per-call fallback to the generic table on wide moduli.
        if (__builtin_cpu_supports("avx512ifma"))
            return &kAvx512IfmaOps;
#endif
        return &kAvx512Ops;
#else
        break;
#endif
    case SimdIsa::avx2:
#ifdef FAST_SIMD_HAVE_AVX2
        return &kAvx2Ops;
#else
        break;
#endif
    case SimdIsa::scalar:
        break;
    }
    return &kScalarOps;
}

bool
hostSupports(SimdIsa isa)
{
    switch (isa) {
    case SimdIsa::scalar:
        return true;
#if defined(__x86_64__) || defined(__i386__)
    case SimdIsa::avx2:
        return __builtin_cpu_supports("avx2") != 0;
    case SimdIsa::avx512:
        return __builtin_cpu_supports("avx512f") != 0 &&
               __builtin_cpu_supports("avx512dq") != 0;
#else
    case SimdIsa::avx2:
    case SimdIsa::avx512:
        return false;
#endif
    }
    return false;
}

/** Widest supported ISA at or below @p want. */
SimdIsa
clampToSupported(SimdIsa want)
{
    for (int i = static_cast<int>(want); i > 0; --i) {
        SimdIsa isa = static_cast<SimdIsa>(i);
        if (simdIsaSupported(isa))
            return isa;
    }
    return SimdIsa::scalar;
}

SimdIsa
initialIsa()
{
    SimdIsa want = bestSimdIsa();
    if (const char *env = std::getenv("FAST_SIMD")) {
        if (std::strcmp(env, "scalar") == 0)
            want = SimdIsa::scalar;
        else if (std::strcmp(env, "avx2") == 0)
            want = SimdIsa::avx2;
        else if (std::strcmp(env, "avx512") == 0)
            want = SimdIsa::avx512;
        // Unknown values keep the auto-detected choice.
    }
    return clampToSupported(want);
}

std::atomic<const SimdOps *> g_active{nullptr};

} // namespace

bool
simdIsaCompiled(SimdIsa isa)
{
    switch (isa) {
    case SimdIsa::scalar:
        return true;
    case SimdIsa::avx2:
#ifdef FAST_SIMD_HAVE_AVX2
        return true;
#else
        return false;
#endif
    case SimdIsa::avx512:
#ifdef FAST_SIMD_HAVE_AVX512
        return true;
#else
        return false;
#endif
    }
    return false;
}

bool
simdIsaSupported(SimdIsa isa)
{
    return simdIsaCompiled(isa) && hostSupports(isa);
}

SimdIsa
bestSimdIsa()
{
    if (simdIsaSupported(SimdIsa::avx512))
        return SimdIsa::avx512;
    if (simdIsaSupported(SimdIsa::avx2))
        return SimdIsa::avx2;
    return SimdIsa::scalar;
}

const SimdOps &
simdOps()
{
    const SimdOps *t = g_active.load(std::memory_order_acquire);
    if (!t) {
        const SimdOps *fresh = tableFor(initialIsa());
        const SimdOps *expected = nullptr;
        if (g_active.compare_exchange_strong(expected, fresh,
                                             std::memory_order_acq_rel))
            t = fresh;
        else
            t = expected;
    }
    return *t;
}

SimdIsa
activeSimdIsa()
{
    return simdOps().isa;
}

bool
setSimdIsa(SimdIsa isa)
{
    if (!simdIsaSupported(isa))
        return false;
    g_active.store(tableFor(isa), std::memory_order_release);
    return true;
}

const char *
simdIsaName(SimdIsa isa)
{
    switch (isa) {
    case SimdIsa::scalar:
        return "scalar";
    case SimdIsa::avx2:
        return "avx2";
    case SimdIsa::avx512:
        return "avx512";
    }
    return "unknown";
}

} // namespace fast::math
