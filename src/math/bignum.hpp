/**
 * @file
 * Minimal unsigned arbitrary-precision integer.
 *
 * CKKS works almost entirely in RNS form, but a handful of places need
 * the composed integer: CRT reconstruction when decoding test values,
 * exact base conversion used to validate the approximate BConv kernel,
 * and the coefficient-wise digit decomposition at the heart of the
 * KLSS-style gadget key-switching (Sec. 2.1.3). Those paths are cold,
 * so this class favors clarity over speed.
 */
#ifndef FAST_MATH_BIGNUM_HPP
#define FAST_MATH_BIGNUM_HPP

#include <string>
#include <vector>

#include "math/modarith.hpp"

namespace fast::math {

/**
 * Unsigned big integer stored as little-endian 64-bit words.
 * The representation is normalized: no trailing zero words.
 */
class BigUInt
{
  public:
    /** Zero. */
    BigUInt() = default;

    /** From a 64-bit value. */
    explicit BigUInt(u64 v);

    /** From little-endian words (normalized on construction). */
    explicit BigUInt(std::vector<u64> words);

    /** True iff the value is zero. */
    bool isZero() const { return words_.empty(); }

    /** Number of significant bits. */
    std::size_t bits() const;

    /** Little-endian word access; word(i) == 0 beyond the top word. */
    u64 word(std::size_t i) const
    {
        return i < words_.size() ? words_[i] : 0;
    }

    std::size_t wordCount() const { return words_.size(); }

    /** Three-way comparison: -1, 0, or 1. */
    int compare(const BigUInt &other) const;

    bool operator==(const BigUInt &o) const { return compare(o) == 0; }
    bool operator!=(const BigUInt &o) const { return compare(o) != 0; }
    bool operator<(const BigUInt &o) const { return compare(o) < 0; }
    bool operator<=(const BigUInt &o) const { return compare(o) <= 0; }
    bool operator>(const BigUInt &o) const { return compare(o) > 0; }
    bool operator>=(const BigUInt &o) const { return compare(o) >= 0; }

    BigUInt operator+(const BigUInt &o) const;

    /** Subtraction; throws std::underflow_error if o > *this. */
    BigUInt operator-(const BigUInt &o) const;

    BigUInt operator*(const BigUInt &o) const;
    BigUInt operator*(u64 o) const;

    /** Left shift by whole bits. */
    BigUInt operator<<(std::size_t shift) const;

    /** Right shift by whole bits. */
    BigUInt operator>>(std::size_t shift) const;

    /** Value mod a word-size modulus. */
    u64 mod(u64 q) const;

    /** Quotient and remainder by a word-size divisor. */
    std::pair<BigUInt, u64> divMod(u64 d) const;

    /** Low @p bit_count bits as a (possibly multi-word) value. */
    BigUInt lowBits(std::size_t bit_count) const;

    /** Convert to double (may lose precision; used for size metrics). */
    double toDouble() const;

    /** Decimal string, for diagnostics. */
    std::string toString() const;

    /** Product of a list of word-size moduli. */
    static BigUInt productOf(const std::vector<u64> &moduli);

  private:
    void normalize();

    std::vector<u64> words_;  ///< little-endian, normalized
};

} // namespace fast::math

#endif // FAST_MATH_BIGNUM_HPP
