/**
 * @file
 * 64-byte-aligned storage for kernel operands.
 *
 * The SIMD kernel backend (math/simd.hpp) streams limb data with
 * 256/512-bit vector loads. Allocating every limb, twiddle table, and
 * BConv scratch row on a 64-byte boundary keeps those loads from
 * straddling cache lines and makes the limb-major layout contract
 * explicit: one limb == one contiguous, cache-line-aligned row.
 *
 * AlignedU64 is a drop-in std::vector<u64> with the stronger
 * alignment; element access, iteration, and (same-type) comparison all
 * behave identically. Only cross-allocator conversions need care —
 * compare against plain vectors element-wise.
 */
#ifndef FAST_MATH_ALIGN_HPP
#define FAST_MATH_ALIGN_HPP

#include <cstddef>
#include <cstdint>
#include <new>
#include <vector>

namespace fast::math {

/** Minimal allocator-aware alignment wrapper around operator new. */
template <typename T, std::size_t Alignment>
struct AlignedAllocator {
    static_assert(Alignment >= alignof(T) &&
                      (Alignment & (Alignment - 1)) == 0,
                  "alignment must be a power of two >= alignof(T)");

    using value_type = T;

    AlignedAllocator() noexcept = default;
    template <typename U>
    AlignedAllocator(const AlignedAllocator<U, Alignment> &) noexcept
    {
    }

    template <typename U>
    struct rebind {
        using other = AlignedAllocator<U, Alignment>;
    };

    T *allocate(std::size_t count)
    {
        return static_cast<T *>(::operator new(
            count * sizeof(T), std::align_val_t(Alignment)));
    }

    void deallocate(T *p, std::size_t) noexcept
    {
        ::operator delete(p, std::align_val_t(Alignment));
    }

    friend bool operator==(const AlignedAllocator &,
                           const AlignedAllocator &) noexcept
    {
        return true;
    }
    friend bool operator!=(const AlignedAllocator &,
                           const AlignedAllocator &) noexcept
    {
        return false;
    }
};

/**
 * The limb storage type: a cache-line-aligned u64 vector. Every
 * RnsPoly limb, NTT twiddle table, and BConv table/scratch row uses
 * this so vector kernels may assume 64-byte base alignment.
 */
using AlignedU64 =
    std::vector<std::uint64_t, AlignedAllocator<std::uint64_t, 64>>;

} // namespace fast::math

#endif // FAST_MATH_ALIGN_HPP
