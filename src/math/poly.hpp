/**
 * @file
 * RNS polynomials over Z_Q[X]/(X^N + 1).
 *
 * An RnsPoly holds one residue limb per prime in its basis, each limb
 * an N-coefficient vector, in either coefficient or evaluation (NTT)
 * representation — exactly the data layout the FAST register files
 * store and the paper's ciphertext structure describes (Sec. 2.1.1).
 *
 * Limbs are stored limb-major on 64-byte boundaries (AlignedU64,
 * math/align.hpp) so the dispatched SIMD kernels (math/simd.hpp) get
 * cache-line-aligned streams; all element-wise ops route through the
 * active kernel table and are bit-identical on every ISA path.
 */
#ifndef FAST_MATH_POLY_HPP
#define FAST_MATH_POLY_HPP

#include <cstddef>
#include <vector>

#include "math/modarith.hpp"
#include "math/ntt.hpp"
#include "math/random.hpp"

namespace fast::math {

/** Representation of a polynomial's limb data. */
enum class PolyForm {
    coeff,  ///< coefficient representation
    eval,   ///< evaluation (NTT / slot-point) representation
};

/**
 * A polynomial in Z[X]/(X^N + 1) stored in RNS limbs.
 */
class RnsPoly
{
  public:
    RnsPoly() : n_(0), form_(PolyForm::coeff) {}

    /** Zero polynomial with the given degree, moduli, and form. */
    RnsPoly(std::size_t n, std::vector<u64> moduli,
            PolyForm form = PolyForm::eval);

    std::size_t degree() const { return n_; }
    std::size_t limbCount() const { return moduli_.size(); }
    PolyForm form() const { return form_; }
    bool isEval() const { return form_ == PolyForm::eval; }

    u64 modulus(std::size_t i) const { return moduli_[i]; }
    const std::vector<u64> &moduli() const { return moduli_; }

    AlignedU64 &limb(std::size_t i) { return limbs_[i]; }
    const AlignedU64 &limb(std::size_t i) const { return limbs_[i]; }

    /** The residues of coefficient/slot @p j across all limbs. */
    std::vector<u64> coefficientResidues(std::size_t j) const;

    /** @name Element-wise arithmetic (moduli must match). */
    ///@{
    RnsPoly &operator+=(const RnsPoly &other);
    RnsPoly &operator-=(const RnsPoly &other);
    RnsPoly operator+(const RnsPoly &other) const;
    RnsPoly operator-(const RnsPoly &other) const;
    void negateInPlace();

    /**
     * Hadamard (slot-wise) product; both operands must be in eval
     * form. This is how polynomial multiplication is done after NTT.
     */
    RnsPoly &hadamardInPlace(const RnsPoly &other);
    RnsPoly hadamard(const RnsPoly &other) const;

    /** Multiply limb i by scalar s_i (one scalar per limb). */
    void scalePerLimb(const std::vector<u64> &scalars);

    /** Multiply every limb by the same 64-bit constant (reduced). */
    void scaleUniform(u64 scalar);
    ///@}

    /** @name Representation changes. */
    ///@{
    /** Forward-NTT every limb (no-op if already eval). */
    void toEval();
    /** Inverse-NTT every limb (no-op if already coeff). */
    void toCoeff();
    ///@}

    /** @name Limb (modulus chain) manipulation. */
    ///@{
    /** Drop the last @p count limbs (rescale/level-drop support). */
    void dropLastLimbs(std::size_t count);
    /** Keep only the first @p count limbs. */
    void keepLimbs(std::size_t count);
    /** Append a zero limb for modulus @p q. */
    void appendLimb(u64 q);
    ///@}

    /**
     * Apply the Galois automorphism X -> X^g (g odd, 0 < g < 2N).
     * Works in either representation; rotation by r slots uses
     * g = 5^r mod 2N and conjugation uses g = 2N - 1 (Sec. 5.5).
     */
    RnsPoly automorphism(u64 galois_elt) const;

    /** @name Sampling helpers (fill in the current form). */
    ///@{
    void fillUniform(Prng &prng);
    /** Same signed ternary value replicated across all limbs. */
    void fillTernary(Prng &prng);
    /**
     * Sparse ternary: exactly @p hamming nonzero (+-1) coefficients.
     * Sparse secrets bound the ModRaise overflow count I during
     * bootstrapping (Sec. 2.1.2).
     */
    void fillSparseTernary(Prng &prng, std::size_t hamming);
    /** Same signed Gaussian noise replicated across all limbs. */
    void fillGaussian(Prng &prng, double sigma = 3.2);
    ///@}

    /**
     * Set coefficient j of every limb from a signed integer (the same
     * integer reduced per limb modulus). Requires coeff form.
     */
    void setCoefficient(std::size_t j, i64 value);

    bool operator==(const RnsPoly &other) const;

  private:
    void requireCompatible(const RnsPoly &other) const;
    /** Forward (fwd) or inverse NTT of every limb via KernelEngine. */
    void transformLimbs(bool fwd);

    std::size_t n_;
    std::vector<u64> moduli_;
    std::vector<AlignedU64> limbs_;
    PolyForm form_;
};

/**
 * Reference negacyclic convolution (schoolbook, O(N^2)) over a single
 * modulus. Used by tests to validate the NTT-based product. The
 * pointer core writes @p n outputs; the container overloads accept
 * either vector flavor.
 */
void negacyclicMulSchoolbook(const u64 *a, const u64 *b, std::size_t n,
                             u64 q, u64 *out);

inline std::vector<u64>
negacyclicMulSchoolbook(const std::vector<u64> &a,
                        const std::vector<u64> &b, u64 q)
{
    std::vector<u64> out(a.size());
    negacyclicMulSchoolbook(a.data(), b.data(), a.size(), q, out.data());
    return out;
}

inline AlignedU64
negacyclicMulSchoolbook(const AlignedU64 &a, const AlignedU64 &b, u64 q)
{
    AlignedU64 out(a.size());
    negacyclicMulSchoolbook(a.data(), b.data(), a.size(), q, out.data());
    return out;
}

} // namespace fast::math

#endif // FAST_MATH_POLY_HPP
