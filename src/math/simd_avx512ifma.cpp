/**
 * @file
 * AVX-512 IFMA variant of the AVX-512 kernel table.
 *
 * Re-compiles simd_avx512.cpp with FAST_SIMD_IFMA_VARIANT defined and
 * -mavx512ifma enabled (see src/math/CMakeLists.txt), producing
 * kAvx512IfmaOps: the same kernels with vpmadd52lo/hi 52-bit fused
 * multiply-adds in the Shoup product and BConv accumulator. Every
 * symbol in the shared source lives in an anonymous namespace, so the
 * two translation units coexist; only the exported table name
 * differs. Dispatch prefers this table for the avx512 tier when
 * CPUID reports the avx512ifma feature.
 */
#ifdef FAST_SIMD_HAVE_AVX512IFMA
#define FAST_SIMD_IFMA_VARIANT 1
#include "simd_avx512.cpp" // NOLINT(bugprone-suspicious-include)
#endif
