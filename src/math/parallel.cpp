/**
 * @file
 * Implementation of the deterministic kernel engine.
 */
#include "math/parallel.hpp"

#include <cstdlib>

#include "obs/trace.hpp"

namespace fast::math {

namespace {

thread_local bool tl_in_worker = false;

} // namespace

KernelEngine::KernelEngine(std::size_t threads)
{
    threads_ = threads ? threads : defaultThreadCount();
    startWorkers(threads_ - 1);
}

KernelEngine::~KernelEngine()
{
    stopWorkers();
}

KernelEngine &
KernelEngine::global()
{
    static KernelEngine engine;
    return engine;
}

std::size_t
KernelEngine::defaultThreadCount()
{
    if (const char *env = std::getenv("FAST_THREADS")) {
        char *end = nullptr;
        long v = std::strtol(env, &end, 10);
        if (end != env && v > 0)
            return static_cast<std::size_t>(v);
    }
    unsigned hc = std::thread::hardware_concurrency();
    return hc ? hc : 1;
}

bool
KernelEngine::inWorker()
{
    return tl_in_worker;
}

void
KernelEngine::setThreadCount(std::size_t threads)
{
    if (threads == 0)
        threads = defaultThreadCount();
    if (threads == threads_)
        return;
    stopWorkers();
    threads_ = threads;
    startWorkers(threads_ - 1);
}

void
KernelEngine::startWorkers(std::size_t worker_count)
{
    shutdown_ = false;
    generation_ = 0;
    workers_.reserve(worker_count);
    for (std::size_t w = 0; w < worker_count; ++w)
        workers_.emplace_back([this, w] { workerLoop(w); });
}

void
KernelEngine::stopWorkers()
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        shutdown_ = true;
    }
    wake_cv_.notify_all();
    for (auto &t : workers_)
        t.join();
    workers_.clear();
}

void
KernelEngine::workerLoop(std::size_t worker_index)
{
    tl_in_worker = true;
    std::uint64_t seen = 0;
    for (;;) {
        const std::function<void(std::size_t)> *job = nullptr;
        std::size_t chunks = 0;
        {
            std::unique_lock<std::mutex> lock(mutex_);
            wake_cv_.wait(lock, [&] {
                return shutdown_ || generation_ != seen;
            });
            if (shutdown_)
                return;
            seen = generation_;
            job = job_;
            chunks = job_chunks_;
        }
        // Static ownership: worker w always runs chunk w + 1 (the
        // caller runs chunk 0). No stealing, no timing dependence.
        if (worker_index + 1 < chunks) {
            FAST_OBS_SPAN_VAR(span, "engine.chunk");
            FAST_OBS_SPAN_ARG(
                span, "chunk",
                static_cast<std::uint64_t>(worker_index + 1));
            (*job)(worker_index + 1);
        }
        {
            std::lock_guard<std::mutex> lock(mutex_);
            ++acked_;
        }
        done_cv_.notify_one();
    }
}

void
KernelEngine::dispatch(const std::function<void(std::size_t)> &run_chunk,
                       std::size_t chunks)
{
    FAST_OBS_COUNT("engine.regions", 1);
    FAST_OBS_SPAN_VAR(region_span, "engine.region");
    FAST_OBS_SPAN_ARG(region_span, "chunks",
                      static_cast<std::uint64_t>(chunks));
    if (chunks <= 1 || workers_.empty() || tl_in_worker ||
        !region_mutex_.try_lock()) {
        // Inline fallback: nested regions, a busy pool, or a 1-thread
        // engine all run serially on the caller. Same chunk->range
        // mapping, so bit-identical results.
        FAST_OBS_COUNT("engine.regions_inline", 1);
        for (std::size_t c = 0; c < chunks; ++c)
            run_chunk(c);
        return;
    }
    std::lock_guard<std::mutex> region(region_mutex_, std::adopt_lock);
    {
        std::lock_guard<std::mutex> lock(mutex_);
        job_ = &run_chunk;
        job_chunks_ = chunks;
        acked_ = 0;
        ++generation_;
    }
    wake_cv_.notify_all();
    {
        FAST_OBS_SPAN_VAR(span, "engine.chunk");
        FAST_OBS_SPAN_ARG(span, "chunk", std::uint64_t{0});
        run_chunk(0);
    }
    // Wait for every worker to acknowledge this generation (idle
    // workers ack too) so the job pointer can be safely reused.
    std::unique_lock<std::mutex> lock(mutex_);
    done_cv_.wait(lock, [&] { return acked_ == workers_.size(); });
    job_ = nullptr;
}

void
KernelEngine::parallelFor(
    std::size_t count,
    const std::function<void(std::size_t, std::size_t)> &body)
{
    if (count == 0)
        return;
    std::size_t chunks = threads_ < count ? threads_ : count;
    std::function<void(std::size_t)> run = [&](std::size_t c) {
        std::size_t begin = count * c / chunks;
        std::size_t end = count * (c + 1) / chunks;
        body(begin, end);
    };
    dispatch(run, chunks);
}

void
KernelEngine::parallelFor2D(
    std::size_t outer, std::size_t inner,
    const std::function<void(std::size_t, std::size_t)> &body)
{
    if (outer == 0 || inner == 0)
        return;
    parallelFor(outer * inner, [&](std::size_t begin, std::size_t end) {
        for (std::size_t g = begin; g < end; ++g)
            body(g / inner, g % inner);
    });
}

std::size_t
KernelEngine::blocksFor(std::size_t n, std::size_t threads,
                        std::size_t min_chunk)
{
    if (min_chunk == 0)
        min_chunk = 1;
    std::size_t blocks = 1;
    while (blocks * 2 <= threads && n / (blocks * 2) >= min_chunk)
        blocks <<= 1;
    return blocks;
}

} // namespace fast::math
