/**
 * @file
 * Shared bit-manipulation helpers.
 *
 * bitReverse / log2Exact used to be copy-pasted into every module that
 * walks an NTT-ordered table (ntt.cpp, poly.cpp, encoder.cpp,
 * nttu.cpp, benes.cpp). They live here once so the kernel engine, the
 * functional layer, and the hardware models agree on the exact
 * indexing conventions.
 */
#ifndef FAST_MATH_BITOPS_HPP
#define FAST_MATH_BITOPS_HPP

#include <cstddef>
#include <stdexcept>

namespace fast::math {

/** Reverse the low @p bits bits of @p x. */
constexpr std::size_t
bitReverse(std::size_t x, int bits)
{
    std::size_t r = 0;
    for (int i = 0; i < bits; ++i) {
        r = (r << 1) | (x & 1);
        x >>= 1;
    }
    return r;
}

/** floor(log2(n)) for n >= 1; 0 for n == 0. */
constexpr int
floorLog2(std::size_t n)
{
    int lg = 0;
    while ((std::size_t(1) << (lg + 1)) <= n)
        ++lg;
    return lg;
}

/**
 * log2 of an exact power of two; throws std::invalid_argument
 * otherwise.
 */
inline int
log2Exact(std::size_t n)
{
    int lg = 0;
    while ((std::size_t(1) << lg) < n)
        ++lg;
    if ((std::size_t(1) << lg) != n)
        throw std::invalid_argument("size must be a power of two");
    return lg;
}

} // namespace fast::math

#endif // FAST_MATH_BITOPS_HPP
