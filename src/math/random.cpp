/**
 * @file
 * Implementation of the PRNG and noise samplers.
 */
#include "math/random.hpp"

#include <cmath>

namespace fast::math {

namespace {

u64
splitmix64(u64 &state)
{
    u64 z = (state += 0x9e3779b97f4a7c15ull);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
}

inline u64
rotl(u64 x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // namespace

Prng::Prng(u64 seed)
{
    u64 sm = seed;
    for (auto &s : s_)
        s = splitmix64(sm);
}

u64
Prng::next()
{
    u64 result = rotl(s_[1] * 5, 7) * 9;
    u64 t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
}

u64
Prng::uniform(u64 bound)
{
    if (bound == 0)
        return next();
    // Rejection sampling to remove modulo bias.
    u64 threshold = (~u64(0) - bound + 1) % bound;
    u64 r;
    do {
        r = next();
    } while (r < threshold);
    return r % bound;
}

double
Prng::uniformReal()
{
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

void
sampleUniform(Prng &prng, u64 q, u64 *out, std::size_t n)
{
    for (std::size_t i = 0; i < n; ++i)
        out[i] = prng.uniform(q);
}

void
sampleTernary(Prng &prng, u64 q, u64 *out, std::size_t n)
{
    for (std::size_t i = 0; i < n; ++i) {
        u64 r = prng.uniform(3);
        out[i] = r == 2 ? q - 1 : r;  // {0, 1, q-1} == {0, 1, -1}
    }
}

void
sampleTernarySigned(Prng &prng, std::vector<i64> &out)
{
    for (auto &v : out)
        v = static_cast<i64>(prng.uniform(3)) - 1;
}

void
sampleGaussianSigned(Prng &prng, double sigma, std::vector<i64> &out)
{
    for (std::size_t i = 0; i < out.size(); i += 2) {
        // Box-Muller; round to the nearest integer.
        double u1 = prng.uniformReal();
        double u2 = prng.uniformReal();
        if (u1 < 1e-300)
            u1 = 1e-300;
        double mag = sigma * std::sqrt(-2.0 * std::log(u1));
        out[i] = static_cast<i64>(std::llround(mag *
                                               std::cos(2 * M_PI * u2)));
        if (i + 1 < out.size())
            out[i + 1] = static_cast<i64>(std::llround(mag *
                                          std::sin(2 * M_PI * u2)));
    }
}

void
sampleGaussian(Prng &prng, u64 q, double sigma, u64 *out, std::size_t n)
{
    std::vector<i64> signed_noise(n);
    sampleGaussianSigned(prng, sigma, signed_noise);
    for (std::size_t i = 0; i < n; ++i)
        out[i] = fromCentered(signed_noise[i], q);
}

} // namespace fast::math
