/**
 * @file
 * Implementation of the negacyclic NTT with Shoup twiddles.
 */
#include "math/ntt.hpp"

#include <map>
#include <mutex>
#include <stdexcept>

#include "math/primes.hpp"

namespace fast::math {

namespace {

int
log2Exact(std::size_t n)
{
    int lg = 0;
    while ((std::size_t(1) << lg) < n)
        ++lg;
    if ((std::size_t(1) << lg) != n)
        throw std::invalid_argument("NTT degree must be a power of two");
    return lg;
}

std::size_t
bitReverse(std::size_t x, int bits)
{
    std::size_t r = 0;
    for (int i = 0; i < bits; ++i) {
        r = (r << 1) | (x & 1);
        x >>= 1;
    }
    return r;
}

} // namespace

NttTables::NttTables(std::size_t n, u64 q) : n_(n), q_(q)
{
    log_n_ = log2Exact(n);
    u64 psi = minimalPrimitiveRoot2N(q, n);
    u64 psi_inv = invMod(psi, q);
    n_inv_ = invMod(static_cast<u64>(n % q), q);
    n_inv_shoup_ = shoupPrecompute(n_inv_, q);

    roots_.resize(n);
    roots_shoup_.resize(n);
    inv_roots_.resize(n);
    inv_roots_shoup_.resize(n);

    // Powers of psi stored in bit-reversed index order; this is the
    // classic layout that lets both butterfly loops walk the table
    // sequentially.
    u64 power = 1;
    std::vector<u64> pows(n), inv_pows(n);
    u64 ipower = 1;
    for (std::size_t i = 0; i < n; ++i) {
        pows[i] = power;
        inv_pows[i] = ipower;
        power = mulMod(power, psi, q);
        ipower = mulMod(ipower, psi_inv, q);
    }
    for (std::size_t i = 0; i < n; ++i) {
        std::size_t r = bitReverse(i, log_n_);
        roots_[i] = pows[r];
        roots_shoup_[i] = shoupPrecompute(roots_[i], q);
        inv_roots_[i] = inv_pows[r];
        inv_roots_shoup_[i] = shoupPrecompute(inv_roots_[i], q);
    }
}

void
NttTables::forward(u64 *data) const
{
    // Cooley-Tukey decimation-in-time with merged psi twiddles
    // (Longa-Naehrig). Input natural order, output bit-reversed.
    const u64 q = q_;
    std::size_t t = n_;
    for (std::size_t m = 1; m < n_; m <<= 1) {
        t >>= 1;
        for (std::size_t i = 0; i < m; ++i) {
            std::size_t j1 = 2 * i * t;
            std::size_t j2 = j1 + t;
            u64 w = roots_[m + i];
            u64 wp = roots_shoup_[m + i];
            for (std::size_t j = j1; j < j2; ++j) {
                u64 u = data[j];
                u64 v = mulModShoup(data[j + t], w, wp, q);
                data[j] = addMod(u, v, q);
                data[j + t] = subMod(u, v, q);
            }
        }
    }
}

void
NttTables::inverse(u64 *data) const
{
    // Gentleman-Sande decimation-in-frequency with merged inverse
    // twiddles. Input bit-reversed, output natural order.
    const u64 q = q_;
    std::size_t t = 1;
    for (std::size_t m = n_ >> 1; m >= 1; m >>= 1) {
        std::size_t j1 = 0;
        for (std::size_t i = 0; i < m; ++i) {
            std::size_t j2 = j1 + t;
            u64 w = inv_roots_[m + i];
            u64 wp = inv_roots_shoup_[m + i];
            for (std::size_t j = j1; j < j2; ++j) {
                u64 u = data[j];
                u64 v = data[j + t];
                data[j] = addMod(u, v, q);
                data[j + t] = mulModShoup(subMod(u, v, q), w, wp, q);
            }
            j1 += 2 * t;
        }
        t <<= 1;
    }
    for (std::size_t j = 0; j < n_; ++j)
        data[j] = mulModShoup(data[j], n_inv_, n_inv_shoup_, q);
}

std::size_t
NttTables::multCount(std::size_t n)
{
    std::size_t lg = 0;
    while ((std::size_t(1) << lg) < n)
        ++lg;
    return (n / 2) * lg;
}

std::shared_ptr<const NttTables>
NttTableCache::get(std::size_t n, u64 q)
{
    static std::mutex mutex;
    static std::map<std::pair<std::size_t, u64>,
                    std::shared_ptr<const NttTables>> cache;
    std::lock_guard<std::mutex> lock(mutex);
    auto key = std::make_pair(n, q);
    auto it = cache.find(key);
    if (it != cache.end())
        return it->second;
    auto tables = std::make_shared<const NttTables>(n, q);
    cache.emplace(key, tables);
    return tables;
}

} // namespace fast::math
