/**
 * @file
 * Implementation of the negacyclic NTT with Shoup twiddles.
 *
 * Hot-path butterflies use Harvey-style lazy reduction: values ride in
 * [0, 4q) between forward stages ([0, 2q) between inverse stages) and
 * are canonicalized once at the end, halving the data-dependent
 * branches in the inner loops. The parallel variants split the stage
 * loops across power-of-two coefficient blocks on a KernelEngine with
 * a static partition, so every butterfly computes exactly the same
 * values as the serial path — bit-identical for any thread count.
 */
#include "math/ntt.hpp"

#include <algorithm>
#include <map>
#include <mutex>
#include <shared_mutex>
#include <stdexcept>

#include "math/bitops.hpp"
#include "math/parallel.hpp"
#include "math/primes.hpp"
#include "obs/trace.hpp"

namespace fast::math {

namespace {

/** Minimum coefficients per parallel NTT block. */
constexpr std::size_t kMinNttBlock = 256;

/**
 * Cooley-Tukey butterflies j in [j1, j1+len) with partner j+t and one
 * twiddle (w, wp). Lazy: inputs < 4q, outputs < 4q.
 */
inline void
ctButterflies(u64 *data, std::size_t j1, std::size_t len, std::size_t t,
              u64 w, u64 wp, u64 q, u64 two_q)
{
    for (std::size_t j = j1; j < j1 + len; ++j) {
        u64 u = data[j];
        if (u >= two_q)
            u -= two_q;
        u64 v = mulModShoupLazy(data[j + t], w, wp, q);
        data[j] = u + v;
        data[j + t] = u - v + two_q;
    }
}

/**
 * Gentleman-Sande butterflies j in [j1, j1+len) with partner j+t.
 * Lazy: inputs < 2q, outputs < 2q.
 */
inline void
gsButterflies(u64 *data, std::size_t j1, std::size_t len, std::size_t t,
              u64 w, u64 wp, u64 q, u64 two_q)
{
    for (std::size_t j = j1; j < j1 + len; ++j) {
        u64 u = data[j];
        u64 v = data[j + t];
        u64 s = u + v;
        data[j] = s >= two_q ? s - two_q : s;
        data[j + t] = mulModShoupLazy(u - v + two_q, w, wp, q);
    }
}

} // namespace

NttTables::NttTables(std::size_t n, u64 q) : n_(n), q_(q)
{
    if (q >= (u64(1) << 62))
        throw std::invalid_argument("NTT modulus must be < 2^62");
    log_n_ = log2Exact(n);
    u64 psi = minimalPrimitiveRoot2N(q, n);
    u64 psi_inv = invMod(psi, q);
    n_inv_ = invMod(static_cast<u64>(n % q), q);
    n_inv_shoup_ = shoupPrecompute(n_inv_, q);

    roots_.resize(n);
    roots_shoup_.resize(n);
    inv_roots_.resize(n);
    inv_roots_shoup_.resize(n);

    // Powers of psi stored in bit-reversed index order; this is the
    // classic layout that lets both butterfly loops walk the table
    // sequentially.
    u64 power = 1;
    std::vector<u64> pows(n), inv_pows(n);
    u64 ipower = 1;
    for (std::size_t i = 0; i < n; ++i) {
        pows[i] = power;
        inv_pows[i] = ipower;
        power = mulMod(power, psi, q);
        ipower = mulMod(ipower, psi_inv, q);
    }
    for (std::size_t i = 0; i < n; ++i) {
        std::size_t r = bitReverse(i, log_n_);
        roots_[i] = pows[r];
        roots_shoup_[i] = shoupPrecompute(roots_[i], q);
        inv_roots_[i] = inv_pows[r];
        inv_roots_shoup_[i] = shoupPrecompute(inv_roots_[i], q);
    }
}

void
NttTables::forward(u64 *data) const
{
    // Cooley-Tukey decimation-in-time with merged psi twiddles
    // (Longa-Naehrig) and lazy reduction. Input natural order
    // (canonical), output bit-reversed (canonical).
    FAST_OBS_COUNT("ntt.forward", 1);
    FAST_OBS_SPAN_VAR(span, "ntt.forward");
    FAST_OBS_SPAN_ARG(span, "n", static_cast<std::uint64_t>(n_));
    const u64 q = q_;
    const u64 two_q = 2 * q;
    std::size_t t = n_;
    for (std::size_t m = 1; m < n_; m <<= 1) {
        t >>= 1;
        for (std::size_t i = 0; i < m; ++i)
            ctButterflies(data, 2 * i * t, t, t, roots_[m + i],
                          roots_shoup_[m + i], q, two_q);
    }
    for (std::size_t j = 0; j < n_; ++j) {
        u64 x = data[j];
        if (x >= two_q)
            x -= two_q;
        data[j] = x >= q ? x - q : x;
    }
}

void
NttTables::inverse(u64 *data) const
{
    // Gentleman-Sande decimation-in-frequency with merged inverse
    // twiddles and lazy reduction. Input bit-reversed, output natural
    // order; the N^-1 scaling pass canonicalizes.
    FAST_OBS_COUNT("ntt.inverse", 1);
    FAST_OBS_SPAN_VAR(span, "ntt.inverse");
    FAST_OBS_SPAN_ARG(span, "n", static_cast<std::uint64_t>(n_));
    const u64 q = q_;
    const u64 two_q = 2 * q;
    std::size_t t = 1;
    for (std::size_t m = n_ >> 1; m >= 1; m >>= 1) {
        for (std::size_t i = 0; i < m; ++i)
            gsButterflies(data, 2 * i * t, t, t, inv_roots_[m + i],
                          inv_roots_shoup_[m + i], q, two_q);
        t <<= 1;
    }
    for (std::size_t j = 0; j < n_; ++j) {
        u64 x = mulModShoupLazy(data[j], n_inv_, n_inv_shoup_, q);
        data[j] = x >= q ? x - q : x;
    }
}

std::size_t
NttTables::blockCount(KernelEngine &engine) const
{
    return KernelEngine::blocksFor(n_, engine.threadCount(),
                                   kMinNttBlock);
}

void
NttTables::forwardParallel(u64 *data, KernelEngine &engine) const
{
    std::size_t blocks = blockCount(engine);
    if (blocks <= 1) {
        forward(data);
        return;
    }
    FAST_OBS_COUNT("ntt.forward", 1);
    FAST_OBS_SPAN_VAR(obs_span, "ntt.forward_parallel");
    FAST_OBS_SPAN_ARG(obs_span, "n", static_cast<std::uint64_t>(n_));
    FAST_OBS_SPAN_ARG(obs_span, "blocks",
                      static_cast<std::uint64_t>(blocks));
    const u64 q = q_;
    const u64 two_q = 2 * q;
    const std::size_t span = n_ / blocks;

    // Upper stages (group count m < blocks): each group's butterfly
    // range is split into blocks/m static sub-ranges; one barrier per
    // stage keeps the cross-block partner accesses ordered.
    std::size_t t = n_;
    for (std::size_t m = 1; m < blocks; m <<= 1) {
        t >>= 1;
        engine.parallelFor(blocks, [&](std::size_t b0, std::size_t b1) {
            std::size_t per_group = blocks / m;
            std::size_t len = t / per_group;
            for (std::size_t b = b0; b < b1; ++b) {
                std::size_t i = b / per_group;
                std::size_t sub = b % per_group;
                ctButterflies(data, 2 * i * t + sub * len, len, t,
                              roots_[m + i], roots_shoup_[m + i], q,
                              two_q);
            }
        });
    }

    // From m = blocks on, every group's [j1, j1+2t) span nests inside
    // one coefficient block: each block finishes its sub-transform and
    // canonicalizes independently — no further barriers.
    engine.parallelFor(blocks, [&](std::size_t b0, std::size_t b1) {
        for (std::size_t b = b0; b < b1; ++b) {
            for (std::size_t m = blocks; m < n_; m <<= 1) {
                std::size_t tt = n_ / (2 * m);
                std::size_t g0 = b * (m / blocks);
                std::size_t g1 = (b + 1) * (m / blocks);
                for (std::size_t i = g0; i < g1; ++i)
                    ctButterflies(data, 2 * i * tt, tt, tt,
                                  roots_[m + i], roots_shoup_[m + i],
                                  q, two_q);
            }
            for (std::size_t j = b * span; j < (b + 1) * span; ++j) {
                u64 x = data[j];
                if (x >= two_q)
                    x -= two_q;
                data[j] = x >= q ? x - q : x;
            }
        }
    });
}

void
NttTables::inverseParallel(u64 *data, KernelEngine &engine) const
{
    std::size_t blocks = blockCount(engine);
    if (blocks <= 1) {
        inverse(data);
        return;
    }
    FAST_OBS_COUNT("ntt.inverse", 1);
    FAST_OBS_SPAN_VAR(obs_span, "ntt.inverse_parallel");
    FAST_OBS_SPAN_ARG(obs_span, "n", static_cast<std::uint64_t>(n_));
    FAST_OBS_SPAN_ARG(obs_span, "blocks",
                      static_cast<std::uint64_t>(blocks));
    const u64 q = q_;
    const u64 two_q = 2 * q;
    const std::size_t span = n_ / blocks;

    // Stages with m >= blocks groups are block-local (the mirror of
    // the forward phase 2): one dispatch covers all of them.
    engine.parallelFor(blocks, [&](std::size_t b0, std::size_t b1) {
        for (std::size_t b = b0; b < b1; ++b) {
            for (std::size_t m = n_ >> 1; m >= blocks; m >>= 1) {
                std::size_t tt = n_ / (2 * m);
                std::size_t g0 = b * (m / blocks);
                std::size_t g1 = (b + 1) * (m / blocks);
                for (std::size_t i = g0; i < g1; ++i)
                    gsButterflies(data, 2 * i * tt, tt, tt,
                                  inv_roots_[m + i],
                                  inv_roots_shoup_[m + i], q, two_q);
            }
        }
    });

    // Final log2(blocks) stages: split each group across blocks with a
    // barrier per stage.
    for (std::size_t m = blocks >> 1; m >= 1; m >>= 1) {
        std::size_t t = n_ / (2 * m);
        engine.parallelFor(blocks, [&](std::size_t b0, std::size_t b1) {
            std::size_t per_group = blocks / m;
            std::size_t len = t / per_group;
            for (std::size_t b = b0; b < b1; ++b) {
                std::size_t i = b / per_group;
                std::size_t sub = b % per_group;
                gsButterflies(data, 2 * i * t + sub * len, len, t,
                              inv_roots_[m + i], inv_roots_shoup_[m + i],
                              q, two_q);
            }
        });
    }

    engine.parallelFor(blocks, [&](std::size_t b0, std::size_t b1) {
        for (std::size_t j = b0 * span; j < b1 * span; ++j) {
            u64 x = mulModShoupLazy(data[j], n_inv_, n_inv_shoup_, q);
            data[j] = x >= q ? x - q : x;
        }
    });
}

void
NttTables::forwardReference(u64 *data) const
{
    const u64 q = q_;
    std::size_t t = n_;
    for (std::size_t m = 1; m < n_; m <<= 1) {
        t >>= 1;
        for (std::size_t i = 0; i < m; ++i) {
            std::size_t j1 = 2 * i * t;
            std::size_t j2 = j1 + t;
            u64 w = roots_[m + i];
            u64 wp = roots_shoup_[m + i];
            for (std::size_t j = j1; j < j2; ++j) {
                u64 u = data[j];
                u64 v = mulModShoup(data[j + t], w, wp, q);
                data[j] = addMod(u, v, q);
                data[j + t] = subMod(u, v, q);
            }
        }
    }
}

void
NttTables::inverseReference(u64 *data) const
{
    const u64 q = q_;
    std::size_t t = 1;
    for (std::size_t m = n_ >> 1; m >= 1; m >>= 1) {
        std::size_t j1 = 0;
        for (std::size_t i = 0; i < m; ++i) {
            std::size_t j2 = j1 + t;
            u64 w = inv_roots_[m + i];
            u64 wp = inv_roots_shoup_[m + i];
            for (std::size_t j = j1; j < j2; ++j) {
                u64 u = data[j];
                u64 v = data[j + t];
                data[j] = addMod(u, v, q);
                data[j + t] = mulModShoup(subMod(u, v, q), w, wp, q);
            }
            j1 += 2 * t;
        }
        t <<= 1;
    }
    for (std::size_t j = 0; j < n_; ++j)
        data[j] = mulModShoup(data[j], n_inv_, n_inv_shoup_, q);
}

std::size_t
NttTables::multCount(std::size_t n)
{
    return (n / 2) * static_cast<std::size_t>(floorLog2(n));
}

std::shared_ptr<const NttTables>
NttTableCache::get(std::size_t n, u64 q)
{
    static std::shared_mutex mutex;
    static std::map<std::pair<std::size_t, u64>,
                    std::shared_ptr<const NttTables>> cache;
    auto key = std::make_pair(n, q);
    {
        std::shared_lock<std::shared_mutex> lock(mutex);
        auto it = cache.find(key);
        if (it != cache.end())
            return it->second;
    }
    std::unique_lock<std::shared_mutex> lock(mutex);
    auto it = cache.find(key);
    if (it != cache.end())
        return it->second;
    auto tables = std::make_shared<const NttTables>(n, q);
    cache.emplace(key, tables);
    return tables;
}

NttTableSet::NttTableSet(std::size_t n, const std::vector<u64> &moduli)
{
    tables_.reserve(moduli.size());
    by_modulus_.reserve(moduli.size());
    for (std::size_t i = 0; i < moduli.size(); ++i) {
        tables_.push_back(NttTableCache::get(n, moduli[i]));
        by_modulus_.emplace_back(moduli[i], i);
    }
    std::sort(by_modulus_.begin(), by_modulus_.end());
}

const NttTables *
NttTableSet::find(u64 q) const
{
    auto it = std::lower_bound(
        by_modulus_.begin(), by_modulus_.end(), q,
        [](const std::pair<u64, std::size_t> &e, u64 v) {
            return e.first < v;
        });
    if (it == by_modulus_.end() || it->first != q)
        return nullptr;
    return tables_[it->second].get();
}

const NttTables &
NttTableSet::forModulus(u64 q) const
{
    const NttTables *t = find(q);
    if (!t)
        throw std::out_of_range("modulus not in NttTableSet");
    return *t;
}

} // namespace fast::math
