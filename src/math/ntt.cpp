/**
 * @file
 * Implementation of the negacyclic NTT with Shoup twiddles.
 *
 * Hot-path butterflies use Harvey-style lazy reduction: values ride in
 * [0, 4q) between forward stages ([0, 2q) between inverse stages) and
 * are canonicalized once at the end, halving the data-dependent
 * branches in the inner loops. The parallel variants split the stage
 * loops across power-of-two coefficient blocks on a KernelEngine with
 * a static partition, so every butterfly computes exactly the same
 * values as the serial path — bit-identical for any thread count.
 */
#include "math/ntt.hpp"

#include <algorithm>
#include <cstring>
#include <map>
#include <mutex>
#include <shared_mutex>
#include <stdexcept>

#include "math/bitops.hpp"
#include "math/parallel.hpp"
#include "math/primes.hpp"
#include "math/simd.hpp"
#include "obs/trace.hpp"

namespace fast::math {

namespace {

/** Minimum coefficients per parallel NTT block. */
constexpr std::size_t kMinNttBlock = 256;

/** Columns per ten-step scratch tile (tile = n1 x kTenStepTile). */
constexpr std::size_t kTenStepTile = 512;

} // namespace

NttTables::NttTables(std::size_t n, u64 q) : n_(n), q_(q)
{
    if (q >= (u64(1) << 62))
        throw std::invalid_argument("NTT modulus must be < 2^62");
    log_n_ = log2Exact(n);
    u64 psi = minimalPrimitiveRoot2N(q, n);
    u64 psi_inv = invMod(psi, q);
    n_inv_ = invMod(static_cast<u64>(n % q), q);
    n_inv_shoup_ = shoupPrecompute(n_inv_, q);

    roots_.resize(n);
    roots_shoup_.resize(n);
    inv_roots_.resize(n);
    inv_roots_shoup_.resize(n);

    // Powers of psi stored in bit-reversed index order; this is the
    // classic layout that lets both butterfly loops walk the table
    // sequentially.
    u64 power = 1;
    std::vector<u64> pows(n), inv_pows(n);
    u64 ipower = 1;
    for (std::size_t i = 0; i < n; ++i) {
        pows[i] = power;
        inv_pows[i] = ipower;
        power = mulMod(power, psi, q);
        ipower = mulMod(ipower, psi_inv, q);
    }
    for (std::size_t i = 0; i < n; ++i) {
        std::size_t r = bitReverse(i, log_n_);
        roots_[i] = pows[r];
        roots_shoup_[i] = shoupPrecompute(roots_[i], q);
        inv_roots_[i] = inv_pows[r];
        inv_roots_shoup_[i] = shoupPrecompute(inv_roots_[i], q);
    }
}

void
NttTables::forward(u64 *data) const
{
    // Cooley-Tukey decimation-in-time with merged psi twiddles
    // (Longa-Naehrig) and lazy reduction. Input natural order
    // (canonical), output bit-reversed (canonical). The whole stage
    // loop runs inside the dispatched kernel so small-stride stages
    // can use the interleaved vector butterflies.
    if (n_ >= kTenStepMinN) {
        forwardTenStep(data, nullptr);
        return;
    }
    FAST_OBS_COUNT("ntt.forward", 1);
    FAST_OBS_SPAN_VAR(span, "ntt.forward");
    FAST_OBS_SPAN_ARG(span, "n", static_cast<std::uint64_t>(n_));
    const SimdOps &ops = simdOps();
    ops.ntt_fwd_tail(data, n_, 1, 0, 1, roots_.data(),
                     roots_shoup_.data(), q_);
    ops.canon_from_4q(data, n_, q_);
}

void
NttTables::inverse(u64 *data) const
{
    // Gentleman-Sande decimation-in-frequency with merged inverse
    // twiddles and lazy reduction. Input bit-reversed, output natural
    // order; the N^-1 scaling pass canonicalizes.
    if (n_ >= kTenStepMinN) {
        inverseTenStep(data, nullptr);
        return;
    }
    FAST_OBS_COUNT("ntt.inverse", 1);
    FAST_OBS_SPAN_VAR(span, "ntt.inverse");
    FAST_OBS_SPAN_ARG(span, "n", static_cast<std::uint64_t>(n_));
    const SimdOps &ops = simdOps();
    ops.ntt_inv_head(data, n_, 1, 0, 1, inv_roots_.data(),
                     inv_roots_shoup_.data(), q_);
    ops.scale_shoup_canon(data, n_, n_inv_, n_inv_shoup_, q_);
}

std::size_t
NttTables::blockCount(KernelEngine &engine) const
{
    return KernelEngine::blocksFor(n_, engine.threadCount(),
                                   kMinNttBlock);
}

void
NttTables::forwardParallel(u64 *data, KernelEngine &engine) const
{
    std::size_t blocks = blockCount(engine);
    if (blocks <= 1) {
        forward(data);
        return;
    }
    if (n_ >= kTenStepMinN) {
        forwardTenStep(data, &engine);
        return;
    }
    FAST_OBS_COUNT("ntt.forward", 1);
    FAST_OBS_SPAN_VAR(obs_span, "ntt.forward_parallel");
    FAST_OBS_SPAN_ARG(obs_span, "n", static_cast<std::uint64_t>(n_));
    FAST_OBS_SPAN_ARG(obs_span, "blocks",
                      static_cast<std::uint64_t>(blocks));
    const SimdOps &ops = simdOps();
    const u64 q = q_;
    const u64 two_q = 2 * q;
    const std::size_t span = n_ / blocks;

    // Upper stages (group count m < blocks): each group's butterfly
    // range is split into blocks/m static sub-ranges; one barrier per
    // stage keeps the cross-block partner accesses ordered.
    std::size_t t = n_;
    for (std::size_t m = 1; m < blocks; m <<= 1) {
        t >>= 1;
        engine.parallelFor(blocks, [&](std::size_t b0, std::size_t b1) {
            std::size_t per_group = blocks / m;
            std::size_t len = t / per_group;
            for (std::size_t b = b0; b < b1; ++b) {
                std::size_t i = b / per_group;
                std::size_t sub = b % per_group;
                ops.ct_butterflies(data, 2 * i * t + sub * len, len, t,
                                   roots_[m + i], roots_shoup_[m + i],
                                   q, two_q);
            }
        });
    }

    // From m = blocks on, every group's [j1, j1+2t) span nests inside
    // one coefficient block: each block finishes its sub-transform and
    // canonicalizes independently — no further barriers.
    engine.parallelFor(blocks, [&](std::size_t b0, std::size_t b1) {
        for (std::size_t b = b0; b < b1; ++b) {
            ops.ntt_fwd_tail(data, n_, blocks, b, blocks,
                             roots_.data(), roots_shoup_.data(), q);
            ops.canon_from_4q(data + b * span, span, q);
        }
    });
}

void
NttTables::inverseParallel(u64 *data, KernelEngine &engine) const
{
    std::size_t blocks = blockCount(engine);
    if (blocks <= 1) {
        inverse(data);
        return;
    }
    if (n_ >= kTenStepMinN) {
        inverseTenStep(data, &engine);
        return;
    }
    FAST_OBS_COUNT("ntt.inverse", 1);
    FAST_OBS_SPAN_VAR(obs_span, "ntt.inverse_parallel");
    FAST_OBS_SPAN_ARG(obs_span, "n", static_cast<std::uint64_t>(n_));
    FAST_OBS_SPAN_ARG(obs_span, "blocks",
                      static_cast<std::uint64_t>(blocks));
    const SimdOps &ops = simdOps();
    const u64 q = q_;
    const u64 two_q = 2 * q;
    const std::size_t span = n_ / blocks;

    // Stages with m >= blocks groups are block-local (the mirror of
    // the forward phase 2): one dispatch covers all of them.
    engine.parallelFor(blocks, [&](std::size_t b0, std::size_t b1) {
        for (std::size_t b = b0; b < b1; ++b)
            ops.ntt_inv_head(data, n_, blocks, b, blocks,
                             inv_roots_.data(),
                             inv_roots_shoup_.data(), q);
    });

    // Final log2(blocks) stages: split each group across blocks with a
    // barrier per stage.
    for (std::size_t m = blocks >> 1; m >= 1; m >>= 1) {
        std::size_t t = n_ / (2 * m);
        engine.parallelFor(blocks, [&](std::size_t b0, std::size_t b1) {
            std::size_t per_group = blocks / m;
            std::size_t len = t / per_group;
            for (std::size_t b = b0; b < b1; ++b) {
                std::size_t i = b / per_group;
                std::size_t sub = b % per_group;
                ops.gs_butterflies(data, 2 * i * t + sub * len, len, t,
                                   inv_roots_[m + i],
                                   inv_roots_shoup_[m + i], q, two_q);
            }
        });
    }

    engine.parallelFor(blocks, [&](std::size_t b0, std::size_t b1) {
        ops.scale_shoup_canon(data + b0 * span, (b1 - b0) * span,
                              n_inv_, n_inv_shoup_, q);
    });
}

void
NttTables::forwardTenStep(u64 *data, KernelEngine *engine) const
{
    // View the coefficients as an n1 x n2 row-major matrix
    // (element (r, c) = data[r*n2 + c], n2 = kTenStepChunk).
    //
    // Stages with m < n1 pair rows r and r + t1 (t1 = n1/(2m)) at
    // every column — stride >= n2 in the flat layout. Walking them
    // directly thrashes the cache at large n, so kTenStepTile columns
    // are gathered into an n1 x tile scratch block where each
    // butterfly group is one contiguous run of t1*tile lanes. Columns
    // never interact in these stages, so per-element stage order (and
    // hence every computed value) is exactly the serial transform's.
    //
    // Stages with m >= n1 nest inside one n2-aligned chunk and run as
    // contiguous chunk-local sub-transforms (same decomposition as
    // forwardParallel's block-local phase).
    if (n_ < 2 * kTenStepChunk)
        throw std::logic_error("ten-step NTT requires n >= 2 chunks");
    FAST_OBS_COUNT("ntt.forward", 1);
    FAST_OBS_SPAN_VAR(span, "ntt.forward_tenstep");
    FAST_OBS_SPAN_ARG(span, "n", static_cast<std::uint64_t>(n_));
    const SimdOps &ops = simdOps();
    const u64 q = q_;
    const u64 two_q = 2 * q;
    const std::size_t n2 = kTenStepChunk;
    const std::size_t n1 = n_ / n2;

    auto columnPhase = [&](std::size_t cb0, std::size_t cb1) {
        thread_local AlignedU64 scratch;
        if (scratch.size() < n1 * kTenStepTile)
            scratch.resize(n1 * kTenStepTile);
        u64 *tile = scratch.data();
        for (std::size_t cb = cb0; cb < cb1; ++cb) {
            const std::size_t c0 = cb * kTenStepTile;
            for (std::size_t r = 0; r < n1; ++r)
                std::memcpy(tile + r * kTenStepTile,
                            data + r * n2 + c0,
                            kTenStepTile * sizeof(u64));
            for (std::size_t m = 1; m < n1; m <<= 1) {
                const std::size_t t1 = n1 / (2 * m);
                const std::size_t run = t1 * kTenStepTile;
                for (std::size_t i = 0; i < m; ++i)
                    ops.ct_butterflies(tile, 2 * i * run, run, run,
                                       roots_[m + i],
                                       roots_shoup_[m + i], q, two_q);
            }
            for (std::size_t r = 0; r < n1; ++r)
                std::memcpy(data + r * n2 + c0,
                            tile + r * kTenStepTile,
                            kTenStepTile * sizeof(u64));
        }
    };
    const std::size_t tiles = n2 / kTenStepTile;
    if (engine)
        engine->parallelFor(tiles, columnPhase);
    else
        columnPhase(0, tiles);

    auto chunkPhase = [&](std::size_t b0, std::size_t b1) {
        for (std::size_t b = b0; b < b1; ++b) {
            ops.ntt_fwd_tail(data, n_, n1, b, n1, roots_.data(),
                             roots_shoup_.data(), q);
            ops.canon_from_4q(data + b * n2, n2, q);
        }
    };
    if (engine)
        engine->parallelFor(n1, chunkPhase);
    else
        chunkPhase(0, n1);
}

void
NttTables::inverseTenStep(u64 *data, KernelEngine *engine) const
{
    // The mirror of forwardTenStep: chunk-local GS stages (m >= n1)
    // first, then the column-tile stages (m < n1), then the N^-1
    // scaling pass.
    if (n_ < 2 * kTenStepChunk)
        throw std::logic_error("ten-step NTT requires n >= 2 chunks");
    FAST_OBS_COUNT("ntt.inverse", 1);
    FAST_OBS_SPAN_VAR(span, "ntt.inverse_tenstep");
    FAST_OBS_SPAN_ARG(span, "n", static_cast<std::uint64_t>(n_));
    const SimdOps &ops = simdOps();
    const u64 q = q_;
    const u64 two_q = 2 * q;
    const std::size_t n2 = kTenStepChunk;
    const std::size_t n1 = n_ / n2;

    auto chunkPhase = [&](std::size_t b0, std::size_t b1) {
        for (std::size_t b = b0; b < b1; ++b)
            ops.ntt_inv_head(data, n_, n1, b, n1, inv_roots_.data(),
                             inv_roots_shoup_.data(), q);
    };
    if (engine)
        engine->parallelFor(n1, chunkPhase);
    else
        chunkPhase(0, n1);

    auto columnPhase = [&](std::size_t cb0, std::size_t cb1) {
        thread_local AlignedU64 scratch;
        if (scratch.size() < n1 * kTenStepTile)
            scratch.resize(n1 * kTenStepTile);
        u64 *tile = scratch.data();
        for (std::size_t cb = cb0; cb < cb1; ++cb) {
            const std::size_t c0 = cb * kTenStepTile;
            for (std::size_t r = 0; r < n1; ++r)
                std::memcpy(tile + r * kTenStepTile,
                            data + r * n2 + c0,
                            kTenStepTile * sizeof(u64));
            for (std::size_t m = n1 >> 1; m >= 1; m >>= 1) {
                const std::size_t t1 = n1 / (2 * m);
                const std::size_t run = t1 * kTenStepTile;
                for (std::size_t i = 0; i < m; ++i)
                    ops.gs_butterflies(tile, 2 * i * run, run, run,
                                       inv_roots_[m + i],
                                       inv_roots_shoup_[m + i], q,
                                       two_q);
            }
            for (std::size_t r = 0; r < n1; ++r)
                std::memcpy(data + r * n2 + c0,
                            tile + r * kTenStepTile,
                            kTenStepTile * sizeof(u64));
        }
    };
    const std::size_t tiles = n2 / kTenStepTile;
    if (engine)
        engine->parallelFor(tiles, columnPhase);
    else
        columnPhase(0, tiles);

    auto scalePhase = [&](std::size_t b0, std::size_t b1) {
        ops.scale_shoup_canon(data + b0 * n2, (b1 - b0) * n2, n_inv_,
                              n_inv_shoup_, q);
    };
    if (engine)
        engine->parallelFor(n1, scalePhase);
    else
        scalePhase(0, n1);
}

void
NttTables::forwardReference(u64 *data) const
{
    const u64 q = q_;
    std::size_t t = n_;
    for (std::size_t m = 1; m < n_; m <<= 1) {
        t >>= 1;
        for (std::size_t i = 0; i < m; ++i) {
            std::size_t j1 = 2 * i * t;
            std::size_t j2 = j1 + t;
            u64 w = roots_[m + i];
            u64 wp = roots_shoup_[m + i];
            for (std::size_t j = j1; j < j2; ++j) {
                u64 u = data[j];
                u64 v = mulModShoup(data[j + t], w, wp, q);
                data[j] = addMod(u, v, q);
                data[j + t] = subMod(u, v, q);
            }
        }
    }
}

void
NttTables::inverseReference(u64 *data) const
{
    const u64 q = q_;
    std::size_t t = 1;
    for (std::size_t m = n_ >> 1; m >= 1; m >>= 1) {
        std::size_t j1 = 0;
        for (std::size_t i = 0; i < m; ++i) {
            std::size_t j2 = j1 + t;
            u64 w = inv_roots_[m + i];
            u64 wp = inv_roots_shoup_[m + i];
            for (std::size_t j = j1; j < j2; ++j) {
                u64 u = data[j];
                u64 v = data[j + t];
                data[j] = addMod(u, v, q);
                data[j + t] = mulModShoup(subMod(u, v, q), w, wp, q);
            }
            j1 += 2 * t;
        }
        t <<= 1;
    }
    for (std::size_t j = 0; j < n_; ++j)
        data[j] = mulModShoup(data[j], n_inv_, n_inv_shoup_, q);
}

std::size_t
NttTables::multCount(std::size_t n)
{
    return (n / 2) * static_cast<std::size_t>(floorLog2(n));
}

std::shared_ptr<const NttTables>
NttTableCache::get(std::size_t n, u64 q)
{
    static std::shared_mutex mutex;
    static std::map<std::pair<std::size_t, u64>,
                    std::shared_ptr<const NttTables>> cache;
    auto key = std::make_pair(n, q);
    {
        std::shared_lock<std::shared_mutex> lock(mutex);
        auto it = cache.find(key);
        if (it != cache.end())
            return it->second;
    }
    std::unique_lock<std::shared_mutex> lock(mutex);
    auto it = cache.find(key);
    if (it != cache.end())
        return it->second;
    auto tables = std::make_shared<const NttTables>(n, q);
    cache.emplace(key, tables);
    return tables;
}

NttTableSet::NttTableSet(std::size_t n, const std::vector<u64> &moduli)
{
    tables_.reserve(moduli.size());
    by_modulus_.reserve(moduli.size());
    for (std::size_t i = 0; i < moduli.size(); ++i) {
        tables_.push_back(NttTableCache::get(n, moduli[i]));
        by_modulus_.emplace_back(moduli[i], i);
    }
    std::sort(by_modulus_.begin(), by_modulus_.end());
}

const NttTables *
NttTableSet::find(u64 q) const
{
    auto it = std::lower_bound(
        by_modulus_.begin(), by_modulus_.end(), q,
        [](const std::pair<u64, std::size_t> &e, u64 v) {
            return e.first < v;
        });
    if (it == by_modulus_.end() || it->first != q)
        return nullptr;
    return tables_[it->second].get();
}

const NttTables &
NttTableSet::forModulus(u64 q) const
{
    const NttTables *t = find(q);
    if (!t)
        throw std::out_of_range("modulus not in NttTableSet");
    return *t;
}

} // namespace fast::math
