/**
 * @file
 * Implementation of RNS polynomials.
 */
#include "math/poly.hpp"

#include <stdexcept>

#include "math/bitops.hpp"
#include "math/parallel.hpp"
#include "math/simd.hpp"

namespace fast::math {

namespace {

/** Minimum coefficients per block for element-wise poly kernels. */
constexpr std::size_t kMinPolyBlock = 2048;

/**
 * Run body(limb, begin, end) over the limb x coefficient-block grid on
 * the global engine. Static partition: bit-identical results for any
 * thread count.
 */
template <typename Body>
void
forEachLimbBlock(std::size_t limbs, std::size_t n, const Body &body)
{
    KernelEngine &eng = KernelEngine::global();
    std::size_t blocks =
        KernelEngine::blocksFor(n, eng.threadCount(), kMinPolyBlock);
    eng.parallelFor2D(limbs, blocks, [&](std::size_t i, std::size_t b) {
        body(i, n * b / blocks, n * (b + 1) / blocks);
    });
}

} // namespace

RnsPoly::RnsPoly(std::size_t n, std::vector<u64> moduli, PolyForm form)
    : n_(n), moduli_(std::move(moduli)), form_(form)
{
    limbs_.resize(moduli_.size());
    for (auto &l : limbs_)
        l.assign(n_, 0);
}

std::vector<u64>
RnsPoly::coefficientResidues(std::size_t j) const
{
    std::vector<u64> out(limbCount());
    for (std::size_t i = 0; i < limbCount(); ++i)
        out[i] = limbs_[i][j];
    return out;
}

void
RnsPoly::requireCompatible(const RnsPoly &other) const
{
    if (n_ != other.n_ || moduli_ != other.moduli_ ||
        form_ != other.form_)
        throw std::invalid_argument("RnsPoly operands incompatible");
}

RnsPoly &
RnsPoly::operator+=(const RnsPoly &other)
{
    requireCompatible(other);
    const SimdOps &ops = simdOps();
    forEachLimbBlock(limbCount(), n_, [&](std::size_t i, std::size_t b,
                                          std::size_t e) {
        ops.add_mod_vec(limbs_[i].data() + b,
                        other.limbs_[i].data() + b, e - b, moduli_[i]);
    });
    return *this;
}

RnsPoly &
RnsPoly::operator-=(const RnsPoly &other)
{
    requireCompatible(other);
    const SimdOps &ops = simdOps();
    forEachLimbBlock(limbCount(), n_, [&](std::size_t i, std::size_t b,
                                          std::size_t e) {
        ops.sub_mod_vec(limbs_[i].data() + b,
                        other.limbs_[i].data() + b, e - b, moduli_[i]);
    });
    return *this;
}

RnsPoly
RnsPoly::operator+(const RnsPoly &other) const
{
    RnsPoly out = *this;
    out += other;
    return out;
}

RnsPoly
RnsPoly::operator-(const RnsPoly &other) const
{
    RnsPoly out = *this;
    out -= other;
    return out;
}

void
RnsPoly::negateInPlace()
{
    const SimdOps &ops = simdOps();
    forEachLimbBlock(limbCount(), n_, [&](std::size_t i, std::size_t b,
                                          std::size_t e) {
        ops.neg_mod_vec(limbs_[i].data() + b, e - b, moduli_[i]);
    });
}

RnsPoly &
RnsPoly::hadamardInPlace(const RnsPoly &other)
{
    requireCompatible(other);
    if (form_ != PolyForm::eval)
        throw std::logic_error("hadamard product requires eval form");
    // Barrett descriptors are built once per limb, outside the block
    // loop, so every block of a limb shares the same constants.
    std::vector<Modulus> mods;
    mods.reserve(limbCount());
    for (u64 q : moduli_)
        mods.emplace_back(q);
    const SimdOps &ops = simdOps();
    forEachLimbBlock(limbCount(), n_, [&](std::size_t i, std::size_t b,
                                          std::size_t e) {
        ops.mul_mod_vec(limbs_[i].data() + b,
                        other.limbs_[i].data() + b, e - b, mods[i]);
    });
    return *this;
}

RnsPoly
RnsPoly::hadamard(const RnsPoly &other) const
{
    RnsPoly out = *this;
    out.hadamardInPlace(other);
    return out;
}

void
RnsPoly::scalePerLimb(const std::vector<u64> &scalars)
{
    if (scalars.size() != limbCount())
        throw std::invalid_argument("scalePerLimb size mismatch");
    std::vector<u64> s(limbCount()), sp(limbCount());
    for (std::size_t i = 0; i < limbCount(); ++i) {
        s[i] = scalars[i] % moduli_[i];
        sp[i] = shoupPrecompute(s[i], moduli_[i]);
    }
    const SimdOps &ops = simdOps();
    forEachLimbBlock(limbCount(), n_, [&](std::size_t i, std::size_t b,
                                          std::size_t e) {
        u64 *p = limbs_[i].data() + b;
        ops.mul_shoup_strict(p, p, e - b, s[i], sp[i], moduli_[i]);
    });
}

void
RnsPoly::scaleUniform(u64 scalar)
{
    std::vector<u64> scalars(limbCount());
    for (std::size_t i = 0; i < limbCount(); ++i)
        scalars[i] = scalar % moduli_[i];
    scalePerLimb(scalars);
}

void
RnsPoly::toEval()
{
    if (form_ == PolyForm::eval)
        return;
    transformLimbs(true);
    form_ = PolyForm::eval;
}

void
RnsPoly::toCoeff()
{
    if (form_ == PolyForm::coeff)
        return;
    transformLimbs(false);
    form_ = PolyForm::coeff;
}

void
RnsPoly::transformLimbs(bool fwd)
{
    // Hoist the table lookups out of the transform loop: one cache
    // probe per limb up front, never inside the dispatched work.
    std::vector<std::shared_ptr<const NttTables>> tables(limbCount());
    for (std::size_t i = 0; i < limbCount(); ++i)
        tables[i] = NttTableCache::get(n_, moduli_[i]);

    KernelEngine &eng = KernelEngine::global();
    if (limbCount() >= eng.threadCount()) {
        // Whole-limb parallelism: one serial transform per limb task.
        eng.parallelFor(limbCount(), [&](std::size_t b, std::size_t e) {
            for (std::size_t i = b; i < e; ++i) {
                if (fwd)
                    tables[i]->forward(limbs_[i]);
                else
                    tables[i]->inverse(limbs_[i]);
            }
        });
    } else {
        // Fewer limbs than threads: split the upper butterfly stages
        // of each transform across coefficient blocks instead.
        for (std::size_t i = 0; i < limbCount(); ++i) {
            if (fwd)
                tables[i]->forwardParallel(limbs_[i].data(), eng);
            else
                tables[i]->inverseParallel(limbs_[i].data(), eng);
        }
    }
}

void
RnsPoly::dropLastLimbs(std::size_t count)
{
    if (count > limbCount())
        throw std::out_of_range("dropLastLimbs count");
    moduli_.resize(moduli_.size() - count);
    limbs_.resize(limbs_.size() - count);
}

void
RnsPoly::keepLimbs(std::size_t count)
{
    if (count > limbCount())
        throw std::out_of_range("keepLimbs count");
    dropLastLimbs(limbCount() - count);
}

void
RnsPoly::appendLimb(u64 q)
{
    moduli_.push_back(q);
    limbs_.emplace_back(n_, 0);
}

RnsPoly
RnsPoly::automorphism(u64 galois_elt) const
{
    u64 two_n = 2 * static_cast<u64>(n_);
    if (galois_elt % 2 == 0 || galois_elt >= two_n)
        throw std::invalid_argument("Galois element must be odd, < 2N");

    RnsPoly out(n_, moduli_, form_);
    if (form_ == PolyForm::coeff) {
        // X^i -> X^{i*g mod 2N}, with X^N = -1 giving a sign flip.
        // The j -> (dst, flip) map is limb-independent, so it is
        // precomputed once and the limb x block grid just applies it
        // (each j maps to a distinct dst, so blocks never collide).
        std::vector<std::size_t> dst(n_);
        std::vector<unsigned char> flip(n_);
        for (std::size_t j = 0; j < n_; ++j) {
            u64 idx = (static_cast<u64>(j) * galois_elt) % two_n;
            flip[j] = idx >= n_;
            dst[j] = static_cast<std::size_t>(
                flip[j] ? idx - n_ : idx);
        }
        forEachLimbBlock(
            limbCount(), n_,
            [&](std::size_t i, std::size_t b, std::size_t e) {
                u64 q = moduli_[i];
                const auto &src = limbs_[i];
                auto &dl = out.limbs_[i];
                for (std::size_t j = b; j < e; ++j) {
                    u64 v = src[j];
                    dl[dst[j]] = flip[j] ? negMod(v, q) : v;
                }
            });
    } else {
        // Eval slot k holds a(psi^{2*br(k)+1}); the automorphism
        // permutes evaluation points: out[k] = in[k'] with
        // 2*br(k')+1 = (2*br(k)+1)*g mod 2N. This is the permutation
        // FAST's AutoU routes through its Benes network (Sec. 5.5).
        int lg = floorLog2(n_);
        std::vector<std::size_t> src_idx(n_);
        for (std::size_t k = 0; k < n_; ++k) {
            u64 e = (2 * static_cast<u64>(bitReverse(k, lg)) + 1);
            u64 src_e = (e * galois_elt) % two_n;
            src_idx[k] = bitReverse(
                static_cast<std::size_t>((src_e - 1) / 2), lg);
        }
        forEachLimbBlock(
            limbCount(), n_,
            [&](std::size_t i, std::size_t b, std::size_t e) {
                const auto &src = limbs_[i];
                auto &dl = out.limbs_[i];
                for (std::size_t k = b; k < e; ++k)
                    dl[k] = src[src_idx[k]];
            });
    }
    return out;
}

void
RnsPoly::fillUniform(Prng &prng)
{
    for (std::size_t i = 0; i < limbCount(); ++i)
        sampleUniform(prng, moduli_[i], limbs_[i]);
}

void
RnsPoly::fillTernary(Prng &prng)
{
    std::vector<i64> values(n_);
    sampleTernarySigned(prng, values);
    for (std::size_t i = 0; i < limbCount(); ++i)
        for (std::size_t j = 0; j < n_; ++j)
            limbs_[i][j] = fromCentered(values[j], moduli_[i]);
}

void
RnsPoly::fillSparseTernary(Prng &prng, std::size_t hamming)
{
    if (hamming > n_)
        throw std::invalid_argument("hamming weight exceeds degree");
    std::vector<i64> values(n_, 0);
    std::size_t placed = 0;
    while (placed < hamming) {
        std::size_t pos = static_cast<std::size_t>(prng.uniform(n_));
        if (values[pos] != 0)
            continue;
        values[pos] = prng.uniform(2) ? 1 : -1;
        ++placed;
    }
    for (std::size_t i = 0; i < limbCount(); ++i)
        for (std::size_t j = 0; j < n_; ++j)
            limbs_[i][j] = fromCentered(values[j], moduli_[i]);
}

void
RnsPoly::fillGaussian(Prng &prng, double sigma)
{
    std::vector<i64> values(n_);
    sampleGaussianSigned(prng, sigma, values);
    for (std::size_t i = 0; i < limbCount(); ++i)
        for (std::size_t j = 0; j < n_; ++j)
            limbs_[i][j] = fromCentered(values[j], moduli_[i]);
}

void
RnsPoly::setCoefficient(std::size_t j, i64 value)
{
    if (form_ != PolyForm::coeff)
        throw std::logic_error("setCoefficient requires coeff form");
    for (std::size_t i = 0; i < limbCount(); ++i)
        limbs_[i][j] = fromCentered(value, moduli_[i]);
}

bool
RnsPoly::operator==(const RnsPoly &other) const
{
    return n_ == other.n_ && moduli_ == other.moduli_ &&
           form_ == other.form_ && limbs_ == other.limbs_;
}

void
negacyclicMulSchoolbook(const u64 *a, const u64 *b, std::size_t n,
                        u64 q, u64 *out)
{
    for (std::size_t k = 0; k < n; ++k)
        out[k] = 0;
    for (std::size_t i = 0; i < n; ++i) {
        for (std::size_t j = 0; j < n; ++j) {
            u64 p = mulMod(a[i], b[j], q);
            std::size_t k = i + j;
            if (k < n)
                out[k] = addMod(out[k], p, q);
            else
                out[k - n] = subMod(out[k - n], p, q);
        }
    }
}

} // namespace fast::math
