/**
 * @file
 * Internal building blocks shared by the SIMD kernel tables.
 *
 * This header is included only by the simd*.cpp translation units. It
 * provides:
 *
 *  - the scalar kernel bodies (the exact arithmetic the pre-SIMD
 *    ntt.cpp / rns.cpp / poly.cpp inner loops performed), used both as
 *    the scalar dispatch table and as the remainder/fallback path of
 *    the vector kernels;
 *  - the templated NTT stage loops nttFwdTail / nttInvHead,
 *    parameterized over a kernel-traits struct so each ISA supplies
 *    its butterfly bodies while sharing the (twiddle-indexing-heavy)
 *    stage/group bookkeeping;
 *  - extern declarations of the per-ISA dispatch tables.
 *
 * Exactness: the lazy butterflies are pure wrapping 64-bit integer
 * expressions, so any lane width computes identical values. Full
 * reductions (Barrett / strict Shoup) return canonical residues,
 * which are unique — so vector and scalar tables agree bit-for-bit.
 */
#ifndef FAST_MATH_SIMD_COMMON_HPP
#define FAST_MATH_SIMD_COMMON_HPP

#include "math/simd.hpp"

namespace fast::math::simd_detail {

// ---------------------------------------------------------------------
// Scalar kernel bodies (shared by the scalar table and vector tails).
// ---------------------------------------------------------------------

/** CT butterflies, lazy reduction: inputs < 4q, outputs < 4q. */
inline void
scalarCtButterflies(u64 *data, std::size_t j1, std::size_t len,
                    std::size_t t, u64 w, u64 wp, u64 q, u64 two_q)
{
    for (std::size_t j = j1; j < j1 + len; ++j) {
        u64 u = data[j];
        if (u >= two_q)
            u -= two_q;
        u64 v = mulModShoupLazy(data[j + t], w, wp, q);
        data[j] = u + v;
        data[j + t] = u - v + two_q;
    }
}

/** GS butterflies, lazy reduction: inputs < 2q, outputs < 2q. */
inline void
scalarGsButterflies(u64 *data, std::size_t j1, std::size_t len,
                    std::size_t t, u64 w, u64 wp, u64 q, u64 two_q)
{
    for (std::size_t j = j1; j < j1 + len; ++j) {
        u64 u = data[j];
        u64 v = data[j + t];
        u64 s = u + v;
        data[j] = s >= two_q ? s - two_q : s;
        data[j + t] = mulModShoupLazy(u - v + two_q, w, wp, q);
    }
}

inline void
scalarCanonFrom4q(u64 *data, std::size_t count, u64 q)
{
    const u64 two_q = 2 * q;
    for (std::size_t j = 0; j < count; ++j) {
        u64 x = data[j];
        if (x >= two_q)
            x -= two_q;
        data[j] = x >= q ? x - q : x;
    }
}

inline void
scalarScaleShoupCanon(u64 *data, std::size_t count, u64 w, u64 wp,
                      u64 q)
{
    for (std::size_t j = 0; j < count; ++j) {
        u64 x = mulModShoupLazy(data[j], w, wp, q);
        data[j] = x >= q ? x - q : x;
    }
}

inline void
scalarMulShoupStrict(const u64 *in, u64 *out, std::size_t count, u64 w,
                     u64 wp, u64 q)
{
    for (std::size_t j = 0; j < count; ++j)
        out[j] = mulModShoup(in[j], w, wp, q);
}

inline void
scalarAddModVec(u64 *dst, const u64 *src, std::size_t count, u64 q)
{
    for (std::size_t j = 0; j < count; ++j)
        dst[j] = addMod(dst[j], src[j], q);
}

inline void
scalarSubModVec(u64 *dst, const u64 *src, std::size_t count, u64 q)
{
    for (std::size_t j = 0; j < count; ++j)
        dst[j] = subMod(dst[j], src[j], q);
}

inline void
scalarNegModVec(u64 *dst, std::size_t count, u64 q)
{
    for (std::size_t j = 0; j < count; ++j)
        dst[j] = negMod(dst[j], q);
}

inline void
scalarMulModVec(u64 *dst, const u64 *src, std::size_t count,
                const Modulus &m)
{
    for (std::size_t j = 0; j < count; ++j)
        dst[j] = mulMod(dst[j], src[j], m);
}

/**
 * BConv inner product, one output limb. The accumulator folds (takes a
 * residue mod p) every @p fold_every terms; the caller sizes
 * fold_every so the 128-bit accumulator cannot overflow between folds.
 * The final reduction is canonical, so the fold schedule never shows
 * in the output.
 */
inline void
scalarBconvAcc(const u64 *const *scaled, std::size_t k, const u64 *col,
               std::size_t count, const Modulus &p,
               std::size_t fold_every, u64 /*max_scaled*/, u64 *out)
{
    const u64 pv = p.value();
    for (std::size_t c = 0; c < count; ++c) {
        u128 acc = 0;
        std::size_t since = 0;
        for (std::size_t i = 0; i < k; ++i) {
            acc += (u128)scaled[i][c] * col[i];
            if (++since == fold_every) {
                acc %= pv;
                since = 0;
            }
        }
        out[c] = p.reduce128(acc);
    }
}

// ---------------------------------------------------------------------
// Stage loops shared across ISA tables.
//
// A kernel-traits struct K supplies:
//   kLanes  — vector width in u64 lanes (1 for scalar);
//   ct/gs   — butterfly kernels with the (data, j1, len, t, ...)
//             contract above (vector body + scalar remainder);
//   ctSmall/gsSmall — interleaved whole-stage kernels for t < kLanes
//             over a contiguous [start, start+count) range whose
//             twiddles are w[0], w[1], ... per group; return false
//             when (t, count) is not supported so the caller falls
//             back to the scalar butterflies.
// ---------------------------------------------------------------------

template <class K>
inline void
nttFwdTail(u64 *data, std::size_t n, std::size_t first_m,
           std::size_t block, std::size_t nblocks, const u64 *w,
           const u64 *wp, u64 q)
{
    const u64 two_q = 2 * q;
    for (std::size_t m = first_m; m < n; m <<= 1) {
        const std::size_t t = n / (2 * m);
        const std::size_t g0 = block * (m / nblocks);
        const std::size_t g1 = (block + 1) * (m / nblocks);
        if (t >= K::kLanes) {
            for (std::size_t i = g0; i < g1; ++i)
                K::ct(data, 2 * i * t, t, t, w[m + i], wp[m + i], q,
                      two_q);
            continue;
        }
        // Small-stride stages: the block's groups are contiguous in
        // memory, so one interleaved kernel covers the whole stage.
        if (K::ctSmall(data, 2 * g0 * t, 2 * (g1 - g0) * t, t,
                       w + m + g0, wp + m + g0, q, two_q))
            continue;
        for (std::size_t i = g0; i < g1; ++i)
            scalarCtButterflies(data, 2 * i * t, t, t, w[m + i],
                                wp[m + i], q, two_q);
    }
}

template <class K>
inline void
nttInvHead(u64 *data, std::size_t n, std::size_t last_m,
           std::size_t block, std::size_t nblocks, const u64 *w,
           const u64 *wp, u64 q)
{
    const u64 two_q = 2 * q;
    for (std::size_t m = n >> 1; m >= last_m; m >>= 1) {
        const std::size_t t = n / (2 * m);
        const std::size_t g0 = block * (m / nblocks);
        const std::size_t g1 = (block + 1) * (m / nblocks);
        if (t >= K::kLanes) {
            for (std::size_t i = g0; i < g1; ++i)
                K::gs(data, 2 * i * t, t, t, w[m + i], wp[m + i], q,
                      two_q);
            continue;
        }
        if (K::gsSmall(data, 2 * g0 * t, 2 * (g1 - g0) * t, t,
                       w + m + g0, wp + m + g0, q, two_q))
            continue;
        for (std::size_t i = g0; i < g1; ++i)
            scalarGsButterflies(data, 2 * i * t, t, t, w[m + i],
                                wp[m + i], q, two_q);
    }
}

// Per-ISA dispatch tables. The scalar one always exists; the vector
// tables are compiled only when the toolchain supports the flags
// (FAST_SIMD_HAVE_* comes from src/math/CMakeLists.txt).
extern const SimdOps kScalarOps;
#ifdef FAST_SIMD_HAVE_AVX2
extern const SimdOps kAvx2Ops;
#endif
#ifdef FAST_SIMD_HAVE_AVX512
extern const SimdOps kAvx512Ops;
#endif
#ifdef FAST_SIMD_HAVE_AVX512IFMA
extern const SimdOps kAvx512IfmaOps;
#endif

} // namespace fast::math::simd_detail

#endif // FAST_MATH_SIMD_COMMON_HPP
