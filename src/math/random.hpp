/**
 * @file
 * Pseudo-random generation and lattice noise samplers.
 *
 * A seedable counter-based PRNG backs three samplers used by CKKS key
 * and ciphertext generation: uniform mod q, ternary {-1, 0, 1} secrets,
 * and centered discrete Gaussian errors. The same PRNG is reused by the
 * Evaluation Key Generator (EKG, Sec. 5.7.2): the `a` half of every evk
 * is expanded on the fly from a 64-bit seed so only the `b` half has to
 * be stored on chip.
 */
#ifndef FAST_MATH_RANDOM_HPP
#define FAST_MATH_RANDOM_HPP

#include <cstddef>
#include <vector>

#include "math/align.hpp"
#include "math/modarith.hpp"

namespace fast::math {

/**
 * xoshiro256** PRNG. Small, fast, and deterministic across platforms,
 * which keeps every test and experiment in this repo reproducible.
 */
class Prng
{
  public:
    /** Seed with splitmix64 expansion of a single 64-bit value. */
    explicit Prng(u64 seed);

    /** Next raw 64-bit output. */
    u64 next();

    /** Unbiased uniform draw in [0, bound) via rejection sampling. */
    u64 uniform(u64 bound);

    /** Uniform double in [0, 1). */
    double uniformReal();

  private:
    u64 s_[4];
};

/**
 * Fill @p n values at @p out with uniform draws mod q. The pointer
 * cores are the single implementation; the container overloads below
 * forward here so std::vector and AlignedU64 limbs sample identically.
 */
void sampleUniform(Prng &prng, u64 q, u64 *out, std::size_t n);

/**
 * Sample a ternary polynomial with coefficients in {-1, 0, 1}
 * (represented mod q), the standard CKKS secret distribution.
 */
void sampleTernary(Prng &prng, u64 q, u64 *out, std::size_t n);

/**
 * Sample centered discrete Gaussian noise with standard deviation
 * @p sigma (default 3.2, the usual RLWE parameter), represented mod q.
 * Uses rounded Box-Muller, adequate for functional validation.
 */
void sampleGaussian(Prng &prng, u64 q, double sigma, u64 *out,
                    std::size_t n);

/** @name Container conveniences (fill the whole container). */
///@{
inline void
sampleUniform(Prng &prng, u64 q, std::vector<u64> &out)
{
    sampleUniform(prng, q, out.data(), out.size());
}

inline void
sampleUniform(Prng &prng, u64 q, AlignedU64 &out)
{
    sampleUniform(prng, q, out.data(), out.size());
}

inline void
sampleTernary(Prng &prng, u64 q, std::vector<u64> &out)
{
    sampleTernary(prng, q, out.data(), out.size());
}

inline void
sampleTernary(Prng &prng, u64 q, AlignedU64 &out)
{
    sampleTernary(prng, q, out.data(), out.size());
}

inline void
sampleGaussian(Prng &prng, u64 q, double sigma, std::vector<u64> &out)
{
    sampleGaussian(prng, q, sigma, out.data(), out.size());
}

inline void
sampleGaussian(Prng &prng, u64 q, double sigma, AlignedU64 &out)
{
    sampleGaussian(prng, q, sigma, out.data(), out.size());
}
///@}

/**
 * Sample the signed integer coefficients of a Gaussian directly
 * (used to replicate the identical error across RNS limbs).
 */
void sampleGaussianSigned(Prng &prng, double sigma, std::vector<i64> &out);

/** Sample signed ternary coefficients in {-1, 0, 1}. */
void sampleTernarySigned(Prng &prng, std::vector<i64> &out);

} // namespace fast::math

#endif // FAST_MATH_RANDOM_HPP
