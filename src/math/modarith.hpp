/**
 * @file
 * 64-bit modular arithmetic primitives.
 *
 * All FHE arithmetic in this library is performed over word-sized prime
 * moduli (28--61 bits), mirroring the RNS decomposition used by CKKS
 * (Sec. 2.1.1 of the FAST paper). This header provides the scalar
 * building blocks: a precomputed modulus descriptor with Barrett
 * constants, plain and Shoup-accelerated modular multiplication,
 * exponentiation and inversion.
 */
#ifndef FAST_MATH_MODARITH_HPP
#define FAST_MATH_MODARITH_HPP

#include <cstdint>
#include <stdexcept>

namespace fast::math {

using u64 = std::uint64_t;
using u128 = unsigned __int128;
using i64 = std::int64_t;

/**
 * A word-sized modulus with precomputed Barrett constants.
 *
 * The constant ratio is floor(2^128 / q), stored as two 64-bit words.
 * Reduction of a 128-bit product then needs only multiplications and
 * shifts, avoiding a hardware divide on the hot path.
 */
class Modulus
{
  public:
    Modulus() : q_(0), cr0_(0), cr1_(0) {}

    /** Construct a modulus descriptor. @param q modulus, 2 <= q < 2^62. */
    explicit Modulus(u64 q);

    /** The modulus value. */
    u64 value() const { return q_; }

    /** Number of significant bits in the modulus. */
    int bits() const;

    /** Reduce a 64-bit value mod q. */
    u64 reduce(u64 a) const;

    /** Barrett-reduce a 128-bit value mod q. */
    u64 reduce128(u128 a) const;

    /** @name Barrett ratio words (floor(2^128 / q)).
     * Exposed so the SIMD kernels can mirror reduce128 lanewise. */
    ///@{
    u64 barrettLo() const { return cr0_; }
    u64 barrettHi() const { return cr1_; }
    ///@}

    bool operator==(const Modulus &other) const { return q_ == other.q_; }
    bool operator!=(const Modulus &other) const { return q_ != other.q_; }

  private:
    u64 q_;
    u64 cr0_;  ///< low word of floor(2^128 / q)
    u64 cr1_;  ///< high word of floor(2^128 / q)
};

/** Modular addition; inputs must already be reduced. */
inline u64
addMod(u64 a, u64 b, u64 q)
{
    u64 s = a + b;
    return s >= q ? s - q : s;
}

/** Modular subtraction; inputs must already be reduced. */
inline u64
subMod(u64 a, u64 b, u64 q)
{
    return a >= b ? a - b : a + q - b;
}

/** Modular negation; input must already be reduced. */
inline u64
negMod(u64 a, u64 q)
{
    return a == 0 ? 0 : q - a;
}

/** Modular multiplication via 128-bit product. */
inline u64
mulMod(u64 a, u64 b, u64 q)
{
    return static_cast<u64>((u128)a * b % q);
}

/** Modular multiplication using a precomputed Barrett modulus. */
inline u64
mulMod(u64 a, u64 b, const Modulus &m)
{
    return m.reduce128((u128)a * b);
}

/**
 * Precompute the Shoup constant for multiplying by a fixed operand.
 * @param w fixed multiplicand, already reduced mod q.
 * @return floor(w * 2^64 / q), used by mulModShoup.
 */
inline u64
shoupPrecompute(u64 w, u64 q)
{
    return static_cast<u64>(((u128)w << 64) / q);
}

/**
 * Shoup modular multiplication a*w mod q with precomputed wp.
 * Roughly 2x faster than a 128-bit divide; used for NTT twiddles,
 * matching the Montgomery/Shoup multipliers inside the NTTU (Sec. 5.2).
 */
inline u64
mulModShoup(u64 a, u64 w, u64 wp, u64 q)
{
    u64 hi = static_cast<u64>(((u128)a * wp) >> 64);
    u64 r = a * w - hi * q;
    return r >= q ? r - q : r;
}

/**
 * Lazy Shoup multiplication: result in [0, 2q), congruent to a*w
 * mod q, for ANY a < 2^64 (a need not be reduced). Skipping the final
 * conditional subtraction is what enables the 2q-delayed ("lazy")
 * reduction in the batched NTT butterfly loops: values ride in
 * [0, 4q) between stages and are canonicalized once at the end.
 * Requires q < 2^62 so 4q fits in 64 bits.
 */
inline u64
mulModShoupLazy(u64 a, u64 w, u64 wp, u64 q)
{
    u64 hi = static_cast<u64>(((u128)a * wp) >> 64);
    return a * w - hi * q;
}

/** Modular exponentiation by squaring. */
u64 powMod(u64 base, u64 exp, u64 q);

/** Modular inverse; throws std::invalid_argument if gcd(a, q) != 1. */
u64 invMod(u64 a, u64 q);

/** Greatest common divisor. */
u64 gcd(u64 a, u64 b);

/**
 * Signed centered representative of a mod q, in (-q/2, q/2].
 * Used when measuring noise and when gadget-decomposing coefficients.
 */
inline i64
toCentered(u64 a, u64 q)
{
    return a > q / 2 ? static_cast<i64>(a) - static_cast<i64>(q)
                     : static_cast<i64>(a);
}

/** Map a signed value into [0, q). */
inline u64
fromCentered(i64 a, u64 q)
{
    i64 r = a % static_cast<i64>(q);
    if (r < 0)
        r += static_cast<i64>(q);
    return static_cast<u64>(r);
}

} // namespace fast::math

#endif // FAST_MATH_MODARITH_HPP
