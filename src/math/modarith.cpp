/**
 * @file
 * Implementation of scalar modular arithmetic.
 */
#include "math/modarith.hpp"

namespace fast::math {

Modulus::Modulus(u64 q) : q_(q)
{
    if (q < 2 || q >= (u64(1) << 62))
        throw std::invalid_argument("Modulus must be in [2, 2^62)");
    // Compute floor(2^128 / q) by long division of 2^128 by q using
    // 128-bit intermediate quantities.
    u128 numerator_hi = (~u128(0)) / q;  // floor((2^128 - 1) / q)
    // (2^128 - 1) = q * numerator_hi + rem; 2^128 = q * numerator_hi +
    // rem + 1, so floor(2^128 / q) is numerator_hi unless rem + 1 == q.
    u128 rem = (~u128(0)) % q;
    u128 cr = numerator_hi + ((rem + 1 == q) ? 1 : 0);
    cr0_ = static_cast<u64>(cr);
    cr1_ = static_cast<u64>(cr >> 64);
}

int
Modulus::bits() const
{
    int b = 0;
    u64 v = q_;
    while (v) {
        ++b;
        v >>= 1;
    }
    return b;
}

u64
Modulus::reduce(u64 a) const
{
    return a % q_;
}

u64
Modulus::reduce128(u128 a) const
{
    // Barrett reduction: q_hat = floor(a * cr / 2^128), r = a - q_hat*q,
    // then at most one correction step.
    u64 a_lo = static_cast<u64>(a);
    u64 a_hi = static_cast<u64>(a >> 64);

    // 256-bit product (a_hi:a_lo) * (cr1_:cr0_), keep bits [128, 192).
    u128 p0 = (u128)a_lo * cr0_;
    u128 p1 = (u128)a_lo * cr1_;
    u128 p2 = (u128)a_hi * cr0_;
    u128 p3 = (u128)a_hi * cr1_;

    u128 mid = p1 + p2 + (p0 >> 64);
    u64 carry = mid < p1 ? 1 : 0;  // detect wrap of p1 + p2
    // Recompute carefully: mid may wrap when adding three terms.
    mid = (p0 >> 64);
    u128 t = mid + p1;
    carry = t < p1 ? 1 : 0;
    mid = t + p2;
    carry += mid < p2 ? 1 : 0;

    u128 hi = p3 + (mid >> 64) + ((u128)carry << 64);
    u64 q_hat = static_cast<u64>(hi);  // floor(a * cr / 2^128) low word

    u64 r = a_lo - q_hat * q_;
    while (r >= q_)
        r -= q_;
    return r;
}

u64
powMod(u64 base, u64 exp, u64 q)
{
    u64 result = 1 % q;
    u64 b = base % q;
    while (exp) {
        if (exp & 1)
            result = mulMod(result, b, q);
        b = mulMod(b, b, q);
        exp >>= 1;
    }
    return result;
}

u64
gcd(u64 a, u64 b)
{
    while (b) {
        u64 t = a % b;
        a = b;
        b = t;
    }
    return a;
}

u64
invMod(u64 a, u64 q)
{
    // Extended Euclid over signed 128-bit to avoid overflow.
    __int128 t = 0, new_t = 1;
    __int128 r = q, new_r = a % q;
    while (new_r != 0) {
        __int128 quotient = r / new_r;
        __int128 tmp = t - quotient * new_t;
        t = new_t;
        new_t = tmp;
        tmp = r - quotient * new_r;
        r = new_r;
        new_r = tmp;
    }
    if (r != 1)
        throw std::invalid_argument("invMod: operand not invertible");
    if (t < 0)
        t += q;
    return static_cast<u64>(t);
}

} // namespace fast::math
