/**
 * @file
 * KernelEngine — the deterministic parallel kernel engine for the
 * functional CKKS layer.
 *
 * The FAST architecture gets its throughput from scalable parallelism:
 * 4 clusters x 256 lanes feeding the NTTU/BConvU/KMU (Sec. 5). The
 * software counterpart is this engine: a fixed pool of worker threads
 * with a *static, work-stealing-free* partitioning primitive,
 * `parallelFor2D(limbs, blocks)`, that every hot kernel (NTT
 * butterflies, coefficient-wise poly ops, BConv inner products,
 * ModUp/KeyMult/ModDown) routes through.
 *
 * Determinism contract
 * --------------------
 * Chunk boundaries depend only on (count, chunk count), chunks write
 * disjoint data, and no kernel performs cross-chunk reductions, so the
 * results are bit-identical to the serial path for ANY thread count.
 * That is what lets the engine stay enabled by default and be shared
 * by the fast::serve device workers.
 *
 * Sizing: `FAST_THREADS` env var if set (> 0), else
 * std::thread::hardware_concurrency(). Tests and benches may resize a
 * pool with setThreadCount(); results do not change, only wall-clock.
 *
 * Nesting / contention: a parallel region issued from inside a worker
 * (or while another thread holds the pool) runs inline on the calling
 * thread — same results, no deadlock.
 */
#ifndef FAST_MATH_PARALLEL_HPP
#define FAST_MATH_PARALLEL_HPP

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace fast::math {

/**
 * A deterministic thread pool with static block partitioning.
 */
class KernelEngine
{
  public:
    /** Pool sized from FAST_THREADS / hardware concurrency. */
    KernelEngine() : KernelEngine(defaultThreadCount()) {}

    /** Pool with an explicit thread count (>= 1; 0 means default). */
    explicit KernelEngine(std::size_t threads);

    ~KernelEngine();

    KernelEngine(const KernelEngine &) = delete;
    KernelEngine &operator=(const KernelEngine &) = delete;

    /** The process-wide engine every kernel uses by default. */
    static KernelEngine &global();

    /** FAST_THREADS if set and positive, else hardware concurrency. */
    static std::size_t defaultThreadCount();

    std::size_t threadCount() const { return threads_; }

    /**
     * Resize the pool. Must not be called concurrently with parallel
     * regions on the same engine. Results are unaffected; only
     * wall-clock changes.
     */
    void setThreadCount(std::size_t threads);

    /**
     * Run body(begin, end) over a static partition of [0, count) into
     * min(threadCount, count) contiguous chunks. Blocks until every
     * chunk has completed. Chunk boundaries are
     * [c*count/chunks, (c+1)*count/chunks) — a pure function of count
     * and the chunk count, never of timing.
     */
    void parallelFor(std::size_t count,
                     const std::function<void(std::size_t, std::size_t)>
                         &body);

    /**
     * The limb x block grid primitive: runs body(i, j) for every pair
     * in [0, outer) x [0, inner), partitioned as contiguous chunks of
     * the flattened (i * inner + j) index space.
     */
    void parallelFor2D(
        std::size_t outer, std::size_t inner,
        const std::function<void(std::size_t, std::size_t)> &body);

    /**
     * Largest power-of-two block count B <= threads with
     * n / B >= min_chunk (always >= 1). Used by kernels that split a
     * single limb's coefficient range.
     */
    static std::size_t blocksFor(std::size_t n, std::size_t threads,
                                 std::size_t min_chunk);

    /** True while the calling thread is one of this pool's workers. */
    static bool inWorker();

  private:
    void startWorkers(std::size_t worker_count);
    void stopWorkers();
    void workerLoop(std::size_t worker_index);
    void dispatch(const std::function<void(std::size_t)> &run_chunk,
                  std::size_t chunks);

    std::size_t threads_ = 1;
    std::vector<std::thread> workers_;

    std::mutex mutex_;
    std::condition_variable wake_cv_;
    std::condition_variable done_cv_;
    std::uint64_t generation_ = 0;
    bool shutdown_ = false;
    const std::function<void(std::size_t)> *job_ = nullptr;
    std::size_t job_chunks_ = 0;
    std::size_t acked_ = 0;

    /** Serializes parallel regions; contenders fall back to inline. */
    std::mutex region_mutex_;
};

} // namespace fast::math

#endif // FAST_MATH_PARALLEL_HPP
