/**
 * @file
 * NTT-friendly prime generation.
 *
 * CKKS in RNS form needs a chain of word-sized primes q_i with
 * q_i = 1 (mod 2N) so that the negacyclic NTT of degree N exists
 * (Sec. 2.1.1). The KLSS key-switching method additionally needs an
 * auxiliary basis of ~60-bit primes (Sec. 2.1.3). This module provides
 * deterministic Miller-Rabin primality testing for 64-bit integers and
 * generators for both kinds of prime chains.
 */
#ifndef FAST_MATH_PRIMES_HPP
#define FAST_MATH_PRIMES_HPP

#include <cstddef>
#include <vector>

#include "math/modarith.hpp"

namespace fast::math {

/** Deterministic Miller-Rabin primality test for 64-bit integers. */
bool isPrime(u64 n);

/**
 * Generate a descending chain of NTT-friendly primes.
 *
 * Primes are congruent to 1 mod (2 * ring_degree), have the requested
 * bit size, and are returned largest-first starting just below
 * 2^bit_size.
 *
 * @param bit_size    target bit width of each prime (e.g. 36 or 60).
 * @param ring_degree polynomial ring degree N (power of two).
 * @param count       number of primes to generate.
 * @param skip        number of matching primes to skip first (lets
 *                    callers carve disjoint chains from one bit size).
 */
std::vector<u64> generateNttPrimes(int bit_size, std::size_t ring_degree,
                                   std::size_t count, std::size_t skip = 0);

/**
 * Find a primitive root modulo prime q.
 * @return a generator of the multiplicative group Z_q^*.
 */
u64 primitiveRoot(u64 q);

/**
 * Find a primitive 2N-th root of unity mod q (requires q = 1 mod 2N).
 * This is the "psi" used by the negacyclic NTT.
 */
u64 minimalPrimitiveRoot2N(u64 q, std::size_t ring_degree);

} // namespace fast::math

#endif // FAST_MATH_PRIMES_HPP
