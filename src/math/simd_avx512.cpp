/**
 * @file
 * AVX-512 kernel table: 8 x u64 lanes (requires AVX-512 F + DQ).
 *
 * DQ supplies a native 64-bit low multiply (_mm512_mullo_epi64) and F
 * supplies unsigned 64-bit mask compares, so only the 64x64->128 high
 * word is emulated (same _mm512_mul_epu32 cross-term assembly as the
 * AVX2 path). Small-stride butterfly stages (t = 1, 2, 4) use
 * permutex2var lane interleaving with constant index vectors. The
 * arithmetic mirrors the scalar kernels exactly — see simd.hpp for
 * the bit-exactness contract.
 *
 * Compiled with -mavx512f -mavx512dq (see src/math/CMakeLists.txt);
 * dispatch never selects this table unless CPUID reports support.
 *
 * IFMA variant: simd_avx512ifma.cpp defines FAST_SIMD_IFMA_VARIANT
 * and re-includes this file, compiled with -mavx512ifma on top. In
 * that mode the Shoup multiply uses vpmadd52lo/hi (52-bit fused
 * multiply-add: one uop where the generic path spends ~10), the BConv
 * accumulator switches to carry-free 52-bit column sums, and every
 * kernel whose operands might not fit the 52-bit lanes forwards to
 * the generic kAvx512Ops entry at call granularity (q >= 2^50 for
 * butterflies: lazy values reach 4q and must stay below 2^52).
 * Outputs remain bit-identical: lazy intermediates may differ by
 * multiples of q between variants, but every kernel contract ends in
 * a canonical reduction, and canonical residues are unique.
 */
#include "math/simd_common.hpp"

#if defined(FAST_SIMD_HAVE_AVX512) &&                                  \
    (!defined(FAST_SIMD_IFMA_VARIANT) ||                               \
     defined(FAST_SIMD_HAVE_AVX512IFMA))

#include <immintrin.h>

namespace fast::math::simd_detail {

namespace {

constexpr std::size_t kLanes = 8;

#ifdef FAST_SIMD_IFMA_VARIANT
/**
 * Largest modulus the IFMA butterflies accept: lazy values reach 4q
 * and every vpmadd52 operand must fit 52 bits, so q < 2^50. Wider
 * moduli forward to the generic AVX-512 kernels per call.
 */
constexpr u64 kIfmaMaxQ = u64(1) << 50;
#define FAST_AVX512_WIDE_Q_FALLBACK(cond, call)                        \
    do {                                                               \
        if (cond) {                                                    \
            kAvx512Ops.call;                                           \
            return;                                                    \
        }                                                              \
    } while (0)
#else
#define FAST_AVX512_WIDE_Q_FALLBACK(cond, call)                        \
    do {                                                               \
    } while (0)
#endif

inline __m512i
set1(u64 x)
{
    return _mm512_set1_epi64(static_cast<long long>(x));
}

inline __m512i
loadu(const u64 *p)
{
    return _mm512_loadu_si512(p);
}

inline void
storeu(u64 *p, __m512i v)
{
    _mm512_storeu_si512(p, v);
}

inline __m512i
mulLo64(__m512i a, __m512i b)
{
    return _mm512_mullo_epi64(a, b);
}

/** High 64 bits of a*b per lane. */
inline __m512i
mulHi64(__m512i a, __m512i b)
{
    const __m512i mask32 = _mm512_set1_epi64(0xffffffffLL);
    __m512i a_hi = _mm512_srli_epi64(a, 32);
    __m512i b_hi = _mm512_srli_epi64(b, 32);
    __m512i ll = _mm512_mul_epu32(a, b);
    __m512i lh = _mm512_mul_epu32(a, b_hi);
    __m512i hl = _mm512_mul_epu32(a_hi, b);
    __m512i hh = _mm512_mul_epu32(a_hi, b_hi);
    __m512i mid = _mm512_add_epi64(
        _mm512_add_epi64(_mm512_srli_epi64(ll, 32),
                         _mm512_and_si512(lh, mask32)),
        _mm512_and_si512(hl, mask32));
    return _mm512_add_epi64(
        _mm512_add_epi64(hh, _mm512_srli_epi64(mid, 32)),
        _mm512_add_epi64(_mm512_srli_epi64(lh, 32),
                         _mm512_srli_epi64(hl, 32)));
}

/**
 * Full 64x64->128 product per lane, low and high words at once. The
 * four 32x32 partial products are shared between both halves, so this
 * costs 4 vpmuludq total — cheaper than a separate vpmullq (3 uops on
 * current cores) plus the 4-multiply high-word emulation.
 */
inline void
mulFull64(__m512i a, __m512i b, __m512i &lo, __m512i &hi)
{
    const __m512i mask32 = _mm512_set1_epi64(0xffffffffLL);
    __m512i a_hi = _mm512_srli_epi64(a, 32);
    __m512i b_hi = _mm512_srli_epi64(b, 32);
    __m512i ll = _mm512_mul_epu32(a, b);
    __m512i lh = _mm512_mul_epu32(a, b_hi);
    __m512i hl = _mm512_mul_epu32(a_hi, b);
    __m512i hh = _mm512_mul_epu32(a_hi, b_hi);
    __m512i mid = _mm512_add_epi64(
        _mm512_add_epi64(_mm512_srli_epi64(ll, 32),
                         _mm512_and_si512(lh, mask32)),
        _mm512_and_si512(hl, mask32));
    lo = _mm512_add_epi64(_mm512_and_si512(ll, mask32),
                          _mm512_slli_epi64(mid, 32));
    hi = _mm512_add_epi64(
        _mm512_add_epi64(hh, _mm512_srli_epi64(mid, 32)),
        _mm512_add_epi64(_mm512_srli_epi64(lh, 32),
                         _mm512_srli_epi64(hl, 32)));
}

/** x >= c ? x - c : x, per lane. */
inline __m512i
csubU64(__m512i x, __m512i c)
{
    __mmask8 ge = _mm512_cmpge_epu64_mask(x, c);
    return _mm512_mask_sub_epi64(x, ge, x, c);
}

#ifdef FAST_SIMD_IFMA_VARIANT
/**
 * Lazy Shoup product via 52-bit IFMA; result < 2q. Requires a < 2^52
 * (callers guarantee a < 4q with q < kIfmaMaxQ) and w < q. wp is the
 * 64-bit Shoup constant floor(w * 2^64 / q); shifting it right by 12
 * yields floor(w * 2^52 / q) exactly, the radix-2^52 constant. With
 * qhat = floor(a * wp52 / 2^52), the true t = a*w - qhat*q lies in
 * [0, 2q) < 2^52, so computing it in the low 52 bits and masking is
 * exact.
 */
inline __m512i
mulShoupLazyV(__m512i a, __m512i w, __m512i wp, __m512i q)
{
    const __m512i zero = _mm512_setzero_si512();
    const __m512i mask52 = _mm512_set1_epi64((1LL << 52) - 1);
    __m512i qhat =
        _mm512_madd52hi_epu64(zero, a, _mm512_srli_epi64(wp, 12));
    __m512i t = _mm512_sub_epi64(_mm512_madd52lo_epu64(zero, a, w),
                                 _mm512_madd52lo_epu64(zero, qhat, q));
    return _mm512_and_si512(t, mask52);
}
#else
/** Lazy Shoup product: a*w - mulhi(a, wp)*q, wrapping. Result < 2q. */
inline __m512i
mulShoupLazyV(__m512i a, __m512i w, __m512i wp, __m512i q)
{
    __m512i hi = mulHi64(a, wp);
    return _mm512_sub_epi64(mulLo64(a, w), mulLo64(hi, q));
}
#endif

/** Lanewise Barrett reduction of (hi:lo) mod q; canonical result. */
inline __m512i
barrettReduceV(__m512i lo, __m512i hi, __m512i qv, __m512i cr0v,
               __m512i cr1v)
{
    const __m512i one = _mm512_set1_epi64(1);
    __m512i h0 = mulHi64(lo, cr0v);
    __m512i p1lo, p1hi, p2lo, p2hi;
    mulFull64(lo, cr1v, p1lo, p1hi);
    mulFull64(hi, cr0v, p2lo, p2hi);
    __m512i p3lo = mulLo64(hi, cr1v);
    __m512i s1 = _mm512_add_epi64(h0, p1lo);
    __mmask8 c1 = _mm512_cmplt_epu64_mask(s1, p1lo);
    __m512i s2 = _mm512_add_epi64(s1, p2lo);
    __mmask8 c2 = _mm512_cmplt_epu64_mask(s2, p2lo);
    __m512i qhat = _mm512_add_epi64(_mm512_add_epi64(p3lo, p1hi), p2hi);
    qhat = _mm512_mask_add_epi64(qhat, c1, qhat, one);
    qhat = _mm512_mask_add_epi64(qhat, c2, qhat, one);
    __m512i r = _mm512_sub_epi64(lo, mulLo64(qhat, qv));
    r = csubU64(r, qv);
    r = csubU64(r, qv);
    return r;
}

// ------------------------------------------------------------------
// Butterflies (t >= 8) with scalar remainders.
// ------------------------------------------------------------------

void
ctAvx512(u64 *data, std::size_t j1, std::size_t len, std::size_t t,
         u64 w, u64 wp, u64 q, u64 two_q)
{
    FAST_AVX512_WIDE_Q_FALLBACK(
        q >= kIfmaMaxQ, ct_butterflies(data, j1, len, t, w, wp, q,
                                       two_q));
    const __m512i wv = set1(w), wpv = set1(wp), qv = set1(q),
                  tqv = set1(two_q);
    std::size_t j = j1;
    const std::size_t end = j1 + len;
    for (; j + kLanes <= end; j += kLanes) {
        __m512i u = csubU64(loadu(data + j), tqv);
        __m512i v = mulShoupLazyV(loadu(data + j + t), wv, wpv, qv);
        storeu(data + j, _mm512_add_epi64(u, v));
        storeu(data + j + t,
               _mm512_add_epi64(_mm512_sub_epi64(u, v), tqv));
    }
    if (j < end)
        scalarCtButterflies(data, j, end - j, t, w, wp, q, two_q);
}

void
gsAvx512(u64 *data, std::size_t j1, std::size_t len, std::size_t t,
         u64 w, u64 wp, u64 q, u64 two_q)
{
    FAST_AVX512_WIDE_Q_FALLBACK(
        q >= kIfmaMaxQ, gs_butterflies(data, j1, len, t, w, wp, q,
                                       two_q));
    const __m512i wv = set1(w), wpv = set1(wp), qv = set1(q),
                  tqv = set1(two_q);
    std::size_t j = j1;
    const std::size_t end = j1 + len;
    for (; j + kLanes <= end; j += kLanes) {
        __m512i u = loadu(data + j);
        __m512i v = loadu(data + j + t);
        __m512i s = csubU64(_mm512_add_epi64(u, v), tqv);
        __m512i d = _mm512_add_epi64(_mm512_sub_epi64(u, v), tqv);
        storeu(data + j, s);
        storeu(data + j + t, mulShoupLazyV(d, wv, wpv, qv));
    }
    if (j < end)
        scalarGsButterflies(data, j, end - j, t, w, wp, q, two_q);
}

// ------------------------------------------------------------------
// Interleaved small-stride stages (t = 1, 2, 4) via permutex2var.
// ------------------------------------------------------------------

struct SmallIdx {
    __m512i u, v, back_a, back_b, wexp;
};

/** Index tables for deinterleave/reinterleave at each small t. */
inline const SmallIdx &
smallIdx(std::size_t t)
{
    // permutex2var: index lane values 0-7 select from the first
    // operand, 8-15 from the second.
    static const SmallIdx t1 = {
        _mm512_set_epi64(14, 12, 10, 8, 6, 4, 2, 0),
        _mm512_set_epi64(15, 13, 11, 9, 7, 5, 3, 1),
        _mm512_set_epi64(11, 3, 10, 2, 9, 1, 8, 0),
        _mm512_set_epi64(15, 7, 14, 6, 13, 5, 12, 4),
        _mm512_set_epi64(7, 6, 5, 4, 3, 2, 1, 0),
    };
    static const SmallIdx t2 = {
        _mm512_set_epi64(13, 12, 9, 8, 5, 4, 1, 0),
        _mm512_set_epi64(15, 14, 11, 10, 7, 6, 3, 2),
        _mm512_set_epi64(11, 10, 3, 2, 9, 8, 1, 0),
        _mm512_set_epi64(15, 14, 7, 6, 13, 12, 5, 4),
        _mm512_set_epi64(3, 3, 2, 2, 1, 1, 0, 0),
    };
    static const SmallIdx t4 = {
        _mm512_set_epi64(11, 10, 9, 8, 3, 2, 1, 0),
        _mm512_set_epi64(15, 14, 13, 12, 7, 6, 5, 4),
        _mm512_set_epi64(11, 10, 9, 8, 3, 2, 1, 0),
        _mm512_set_epi64(15, 14, 13, 12, 7, 6, 5, 4),
        _mm512_set_epi64(1, 1, 1, 1, 0, 0, 0, 0),
    };
    return t == 1 ? t1 : t == 2 ? t2 : t4;
}

/**
 * Expand kLanes/t twiddles into per-lane order. Only the first
 * kLanes/t lanes of the source load are referenced by wexp, so the
 * load must not read past tw[kLanes/t - 1]; use the narrowest load
 * that covers them.
 */
inline __m512i
expandTwiddles(const u64 *tw, std::size_t t, __m512i wexp)
{
    __m512i src;
    if (t == 1) {
        src = loadu(tw); // 8 twiddles, all used
    } else if (t == 2) {
        src = _mm512_castsi256_si512(_mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(tw))); // 4 used
    } else {
        src = _mm512_castsi128_si512(_mm_loadu_si128(
            reinterpret_cast<const __m128i *>(tw))); // 2 used
    }
    return _mm512_permutexvar_epi64(wexp, src);
}

bool
ctSmallAvx512(u64 *data, std::size_t start, std::size_t count,
              std::size_t t, const u64 *w, const u64 *wp, u64 q,
              u64 two_q)
{
    if ((t != 1 && t != 2 && t != 4) || count % (2 * kLanes) != 0)
        return false;
    const __m512i qv = set1(q), tqv = set1(two_q);
    const SmallIdx &idx = smallIdx(t);
    const std::size_t tw_step = kLanes / t;
    for (std::size_t off = start; off < start + count;
         off += 2 * kLanes, w += tw_step, wp += tw_step) {
        __m512i a = loadu(data + off);
        __m512i b = loadu(data + off + kLanes);
        __m512i u = _mm512_permutex2var_epi64(a, idx.u, b);
        __m512i v = _mm512_permutex2var_epi64(a, idx.v, b);
        __m512i wv = expandTwiddles(w, t, idx.wexp);
        __m512i wpv = expandTwiddles(wp, t, idx.wexp);
        u = csubU64(u, tqv);
        __m512i vv = mulShoupLazyV(v, wv, wpv, qv);
        __m512i ou = _mm512_add_epi64(u, vv);
        __m512i ov = _mm512_add_epi64(_mm512_sub_epi64(u, vv), tqv);
        storeu(data + off,
               _mm512_permutex2var_epi64(ou, idx.back_a, ov));
        storeu(data + off + kLanes,
               _mm512_permutex2var_epi64(ou, idx.back_b, ov));
    }
    return true;
}

bool
gsSmallAvx512(u64 *data, std::size_t start, std::size_t count,
              std::size_t t, const u64 *w, const u64 *wp, u64 q,
              u64 two_q)
{
    if ((t != 1 && t != 2 && t != 4) || count % (2 * kLanes) != 0)
        return false;
    const __m512i qv = set1(q), tqv = set1(two_q);
    const SmallIdx &idx = smallIdx(t);
    const std::size_t tw_step = kLanes / t;
    for (std::size_t off = start; off < start + count;
         off += 2 * kLanes, w += tw_step, wp += tw_step) {
        __m512i a = loadu(data + off);
        __m512i b = loadu(data + off + kLanes);
        __m512i u = _mm512_permutex2var_epi64(a, idx.u, b);
        __m512i v = _mm512_permutex2var_epi64(a, idx.v, b);
        __m512i wv = expandTwiddles(w, t, idx.wexp);
        __m512i wpv = expandTwiddles(wp, t, idx.wexp);
        __m512i s = csubU64(_mm512_add_epi64(u, v), tqv);
        __m512i d = _mm512_add_epi64(_mm512_sub_epi64(u, v), tqv);
        __m512i ov = mulShoupLazyV(d, wv, wpv, qv);
        storeu(data + off,
               _mm512_permutex2var_epi64(s, idx.back_a, ov));
        storeu(data + off + kLanes,
               _mm512_permutex2var_epi64(s, idx.back_b, ov));
    }
    return true;
}

struct Avx512Kernels {
    static constexpr std::size_t kLanes = 8;
    static void ct(u64 *data, std::size_t j1, std::size_t len,
                   std::size_t t, u64 w, u64 wp, u64 q, u64 two_q)
    {
        ctAvx512(data, j1, len, t, w, wp, q, two_q);
    }
    static void gs(u64 *data, std::size_t j1, std::size_t len,
                   std::size_t t, u64 w, u64 wp, u64 q, u64 two_q)
    {
        gsAvx512(data, j1, len, t, w, wp, q, two_q);
    }
    static bool ctSmall(u64 *data, std::size_t start, std::size_t count,
                        std::size_t t, const u64 *w, const u64 *wp,
                        u64 q, u64 two_q)
    {
        return ctSmallAvx512(data, start, count, t, w, wp, q, two_q);
    }
    static bool gsSmall(u64 *data, std::size_t start, std::size_t count,
                        std::size_t t, const u64 *w, const u64 *wp,
                        u64 q, u64 two_q)
    {
        return gsSmallAvx512(data, start, count, t, w, wp, q, two_q);
    }
};

void
nttFwdTailAvx512(u64 *data, std::size_t n, std::size_t first_m,
                 std::size_t block, std::size_t nblocks, const u64 *w,
                 const u64 *wp, u64 q)
{
    FAST_AVX512_WIDE_Q_FALLBACK(
        q >= kIfmaMaxQ,
        ntt_fwd_tail(data, n, first_m, block, nblocks, w, wp, q));
    nttFwdTail<Avx512Kernels>(data, n, first_m, block, nblocks, w, wp,
                              q);
}

void
nttInvHeadAvx512(u64 *data, std::size_t n, std::size_t last_m,
                 std::size_t block, std::size_t nblocks, const u64 *w,
                 const u64 *wp, u64 q)
{
    FAST_AVX512_WIDE_Q_FALLBACK(
        q >= kIfmaMaxQ,
        ntt_inv_head(data, n, last_m, block, nblocks, w, wp, q));
    nttInvHead<Avx512Kernels>(data, n, last_m, block, nblocks, w, wp,
                              q);
}

// ------------------------------------------------------------------
// Element-wise kernels.
// ------------------------------------------------------------------

void
canonFrom4qAvx512(u64 *data, std::size_t count, u64 q)
{
    const __m512i qv = set1(q), tqv = set1(2 * q);
    std::size_t j = 0;
    for (; j + kLanes <= count; j += kLanes) {
        __m512i x = loadu(data + j);
        x = csubU64(x, tqv);
        x = csubU64(x, qv);
        storeu(data + j, x);
    }
    if (j < count)
        scalarCanonFrom4q(data + j, count - j, q);
}

void
scaleShoupCanonAvx512(u64 *data, std::size_t count, u64 w, u64 wp,
                      u64 q)
{
    FAST_AVX512_WIDE_Q_FALLBACK(
        q >= kIfmaMaxQ, scale_shoup_canon(data, count, w, wp, q));
    const __m512i wv = set1(w), wpv = set1(wp), qv = set1(q);
    std::size_t j = 0;
    for (; j + kLanes <= count; j += kLanes) {
        __m512i x = mulShoupLazyV(loadu(data + j), wv, wpv, qv);
        storeu(data + j, csubU64(x, qv));
    }
    if (j < count)
        scalarScaleShoupCanon(data + j, count - j, w, wp, q);
}

void
mulShoupStrictAvx512(const u64 *in, u64 *out, std::size_t count, u64 w,
                     u64 wp, u64 q)
{
    FAST_AVX512_WIDE_Q_FALLBACK(
        q >= kIfmaMaxQ, mul_shoup_strict(in, out, count, w, wp, q));
    const __m512i wv = set1(w), wpv = set1(wp), qv = set1(q);
    std::size_t j = 0;
    for (; j + kLanes <= count; j += kLanes) {
        __m512i x = mulShoupLazyV(loadu(in + j), wv, wpv, qv);
        storeu(out + j, csubU64(x, qv));
    }
    if (j < count)
        scalarMulShoupStrict(in + j, out + j, count - j, w, wp, q);
}

void
addModVecAvx512(u64 *dst, const u64 *src, std::size_t count, u64 q)
{
    const __m512i qv = set1(q);
    std::size_t j = 0;
    for (; j + kLanes <= count; j += kLanes) {
        __m512i s = _mm512_add_epi64(loadu(dst + j), loadu(src + j));
        storeu(dst + j, csubU64(s, qv));
    }
    if (j < count)
        scalarAddModVec(dst + j, src + j, count - j, q);
}

void
subModVecAvx512(u64 *dst, const u64 *src, std::size_t count, u64 q)
{
    const __m512i qv = set1(q);
    std::size_t j = 0;
    for (; j + kLanes <= count; j += kLanes) {
        __m512i a = loadu(dst + j);
        __m512i b = loadu(src + j);
        __mmask8 lt = _mm512_cmplt_epu64_mask(a, b);
        __m512i d = _mm512_sub_epi64(a, b);
        storeu(dst + j, _mm512_mask_add_epi64(d, lt, d, qv));
    }
    if (j < count)
        scalarSubModVec(dst + j, src + j, count - j, q);
}

void
negModVecAvx512(u64 *dst, std::size_t count, u64 q)
{
    const __m512i qv = set1(q), zero = _mm512_setzero_si512();
    std::size_t j = 0;
    for (; j + kLanes <= count; j += kLanes) {
        __m512i a = loadu(dst + j);
        __mmask8 nz = _mm512_cmpneq_epu64_mask(a, zero);
        storeu(dst + j, _mm512_maskz_sub_epi64(nz, qv, a));
    }
    if (j < count)
        scalarNegModVec(dst + j, count - j, q);
}

void
mulModVecAvx512(u64 *dst, const u64 *src, std::size_t count,
                const Modulus &m)
{
    const __m512i qv = set1(m.value());
    const __m512i cr0v = set1(m.barrettLo());
    const __m512i cr1v = set1(m.barrettHi());
    std::size_t j = 0;
    for (; j + kLanes <= count; j += kLanes) {
        __m512i a = loadu(dst + j);
        __m512i b = loadu(src + j);
        __m512i lo, hi;
        mulFull64(a, b, lo, hi);
        storeu(dst + j, barrettReduceV(lo, hi, qv, cr0v, cr1v));
    }
    if (j < count)
        scalarMulModVec(dst + j, src + j, count - j, m);
}

void
bconvAccAvx512(const u64 *const *scaled, std::size_t k, const u64 *col,
               std::size_t count, const Modulus &p,
               std::size_t fold_every, u64 max_scaled, u64 *out)
{
#ifdef FAST_SIMD_IFMA_VARIANT
    // 52-bit IFMA inner product. Each term contributes its low and
    // high 52 product bits to separate 64-bit accumulators with NO
    // carry handling at all: lo52/hi52 terms are < 2^52, so up to
    // 2^12 terms fit before a lane could wrap. Preconditions: both
    // operands below 2^52, k small, and no mid-loop fold needed —
    // with 52-bit operands the 128-bit total cannot overflow before
    // k = 2^24 terms, so fold_every > k always holds when the operand
    // check passes; the fold_every test is belt-and-braces.
    if (max_scaled > (u64(1) << 52) || p.value() > (u64(1) << 52) ||
        k >= 4096 || fold_every <= k) {
        kAvx512Ops.bconv_acc(scaled, k, col, count, p, fold_every,
                             max_scaled, out);
        return;
    }
    const u64 pv = p.value();
    const __m512i qv = set1(pv);
    const __m512i cr0v = set1(p.barrettLo());
    const __m512i cr1v = set1(p.barrettHi());
    const __m512i one = _mm512_set1_epi64(1);
    // Recombine (hi52:lo52) column sums into a 128-bit (hi64, lo64)
    // value and Barrett-reduce: total = acc_hi * 2^52 + acc_lo.
    auto reduceCols = [&](__m512i acc_lo, __m512i acc_hi) {
        __m512i lo =
            _mm512_add_epi64(acc_lo, _mm512_slli_epi64(acc_hi, 52));
        __mmask8 carry = _mm512_cmplt_epu64_mask(lo, acc_lo);
        __m512i hi = _mm512_srli_epi64(acc_hi, 12);
        hi = _mm512_mask_add_epi64(hi, carry, hi, one);
        return barrettReduceV(lo, hi, qv, cr0v, cr1v);
    };
    std::size_t c = 0;
    for (; c + 2 * kLanes <= count; c += 2 * kLanes) {
        __m512i acc_lo0 = _mm512_setzero_si512();
        __m512i acc_hi0 = _mm512_setzero_si512();
        __m512i acc_lo1 = _mm512_setzero_si512();
        __m512i acc_hi1 = _mm512_setzero_si512();
        for (std::size_t i = 0; i < k; ++i) {
            __m512i cv = set1(col[i]);
            __m512i x0 = loadu(scaled[i] + c);
            __m512i x1 = loadu(scaled[i] + c + kLanes);
            acc_lo0 = _mm512_madd52lo_epu64(acc_lo0, x0, cv);
            acc_hi0 = _mm512_madd52hi_epu64(acc_hi0, x0, cv);
            acc_lo1 = _mm512_madd52lo_epu64(acc_lo1, x1, cv);
            acc_hi1 = _mm512_madd52hi_epu64(acc_hi1, x1, cv);
        }
        storeu(out + c, reduceCols(acc_lo0, acc_hi0));
        storeu(out + c + kLanes, reduceCols(acc_lo1, acc_hi1));
    }
    for (; c + kLanes <= count; c += kLanes) {
        __m512i acc_lo = _mm512_setzero_si512();
        __m512i acc_hi = _mm512_setzero_si512();
        for (std::size_t i = 0; i < k; ++i) {
            __m512i cv = set1(col[i]);
            __m512i x = loadu(scaled[i] + c);
            acc_lo = _mm512_madd52lo_epu64(acc_lo, x, cv);
            acc_hi = _mm512_madd52hi_epu64(acc_hi, x, cv);
        }
        storeu(out + c, reduceCols(acc_lo, acc_hi));
    }
    if (c < count) {
        for (std::size_t cc = c; cc < count; ++cc) {
            u128 acc = 0;
            for (std::size_t i = 0; i < k; ++i)
                acc += (u128)scaled[i][cc] * col[i];
            out[cc] = p.reduce128(acc);
        }
    }
#else
    (void)max_scaled;
    const u64 pv = p.value();
    const __m512i qv = set1(pv);
    const __m512i cr0v = set1(p.barrettLo());
    const __m512i cr1v = set1(p.barrettHi());
    const __m512i one = _mm512_set1_epi64(1);
    // Per-lane fold of a 128-bit accumulator; only reached when the
    // modulus mix is so wide that fold_every < k (rare in practice).
    auto fold = [&](__m512i &acc_lo, __m512i &acc_hi) {
        alignas(64) u64 lo[kLanes], hi[kLanes];
        storeu(lo, acc_lo);
        storeu(hi, acc_hi);
        for (std::size_t l = 0; l < kLanes; ++l) {
            u128 a = ((u128)hi[l] << 64) | lo[l];
            a %= pv;
            lo[l] = static_cast<u64>(a);
            hi[l] = static_cast<u64>(a >> 64);
        }
        acc_lo = loadu(lo);
        acc_hi = loadu(hi);
    };
    std::size_t c = 0;
    // Two independent accumulator pairs per iteration hide the
    // add/carry dependency chain; the fused full multiply shares its
    // 32x32 partial products between the low and high halves.
    for (; c + 2 * kLanes <= count; c += 2 * kLanes) {
        __m512i acc_lo0 = _mm512_setzero_si512();
        __m512i acc_hi0 = _mm512_setzero_si512();
        __m512i acc_lo1 = _mm512_setzero_si512();
        __m512i acc_hi1 = _mm512_setzero_si512();
        std::size_t since = 0;
        for (std::size_t i = 0; i < k; ++i) {
            __m512i cv = set1(col[i]);
            __m512i x0 = loadu(scaled[i] + c);
            __m512i x1 = loadu(scaled[i] + c + kLanes);
            __m512i t_lo0, t_hi0, t_lo1, t_hi1;
            mulFull64(x0, cv, t_lo0, t_hi0);
            mulFull64(x1, cv, t_lo1, t_hi1);
            acc_lo0 = _mm512_add_epi64(acc_lo0, t_lo0);
            __mmask8 carry0 = _mm512_cmplt_epu64_mask(acc_lo0, t_lo0);
            acc_hi0 = _mm512_add_epi64(acc_hi0, t_hi0);
            acc_hi0 =
                _mm512_mask_add_epi64(acc_hi0, carry0, acc_hi0, one);
            acc_lo1 = _mm512_add_epi64(acc_lo1, t_lo1);
            __mmask8 carry1 = _mm512_cmplt_epu64_mask(acc_lo1, t_lo1);
            acc_hi1 = _mm512_add_epi64(acc_hi1, t_hi1);
            acc_hi1 =
                _mm512_mask_add_epi64(acc_hi1, carry1, acc_hi1, one);
            if (++since == fold_every) {
                fold(acc_lo0, acc_hi0);
                fold(acc_lo1, acc_hi1);
                since = 0;
            }
        }
        storeu(out + c,
               barrettReduceV(acc_lo0, acc_hi0, qv, cr0v, cr1v));
        storeu(out + c + kLanes,
               barrettReduceV(acc_lo1, acc_hi1, qv, cr0v, cr1v));
    }
    for (; c + kLanes <= count; c += kLanes) {
        __m512i acc_lo = _mm512_setzero_si512();
        __m512i acc_hi = _mm512_setzero_si512();
        std::size_t since = 0;
        for (std::size_t i = 0; i < k; ++i) {
            __m512i x = loadu(scaled[i] + c);
            __m512i cv = set1(col[i]);
            __m512i t_lo, t_hi;
            mulFull64(x, cv, t_lo, t_hi);
            acc_lo = _mm512_add_epi64(acc_lo, t_lo);
            __mmask8 carry = _mm512_cmplt_epu64_mask(acc_lo, t_lo);
            acc_hi = _mm512_add_epi64(acc_hi, t_hi);
            acc_hi = _mm512_mask_add_epi64(acc_hi, carry, acc_hi, one);
            if (++since == fold_every) {
                fold(acc_lo, acc_hi);
                since = 0;
            }
        }
        storeu(out + c, barrettReduceV(acc_lo, acc_hi, qv, cr0v, cr1v));
    }
    if (c < count) {
        for (std::size_t cc = c; cc < count; ++cc) {
            u128 acc = 0;
            std::size_t since = 0;
            for (std::size_t i = 0; i < k; ++i) {
                acc += (u128)scaled[i][cc] * col[i];
                if (++since == fold_every) {
                    acc %= pv;
                    since = 0;
                }
            }
            out[cc] = p.reduce128(acc);
        }
    }
#endif // FAST_SIMD_IFMA_VARIANT
}

} // namespace

#ifdef FAST_SIMD_IFMA_VARIANT
const SimdOps kAvx512IfmaOps = {
    SimdIsa::avx512,
    "avx512-ifma",
#else
const SimdOps kAvx512Ops = {
    SimdIsa::avx512,
    "avx512",
#endif
    &ctAvx512,
    &gsAvx512,
    &nttFwdTailAvx512,
    &nttInvHeadAvx512,
    &canonFrom4qAvx512,
    &scaleShoupCanonAvx512,
    &mulShoupStrictAvx512,
    &addModVecAvx512,
    &subModVecAvx512,
    &negModVecAvx512,
    &mulModVecAvx512,
    &bconvAccAvx512,
};

} // namespace fast::math::simd_detail

#endif // FAST_SIMD_HAVE_AVX512
