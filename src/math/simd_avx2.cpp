/**
 * @file
 * AVX2 kernel table: 4 x u64 lanes.
 *
 * AVX2 has no 64-bit multiply, so the 64x64->128 products every kernel
 * needs are assembled from _mm256_mul_epu32 (32x32->64) cross terms,
 * and unsigned 64-bit compares use the sign-bit-bias trick on the
 * signed _mm256_cmpgt_epi64. All butterfly arithmetic is the same
 * wrapping 64-bit expression sequence as the scalar kernels, so
 * results are bit-identical; the full reductions (strict Shoup,
 * Barrett) return canonical residues and therefore also match.
 *
 * Compiled with -mavx2 (see src/math/CMakeLists.txt); nothing in this
 * TU runs unless dispatch selected the table, so the binary stays
 * safe on non-AVX2 hosts.
 */
#include "math/simd_common.hpp"

#ifdef FAST_SIMD_HAVE_AVX2

#include <immintrin.h>

namespace fast::math::simd_detail {

namespace {

constexpr std::size_t kLanes = 4;

inline __m256i
set1(u64 x)
{
    return _mm256_set1_epi64x(static_cast<long long>(x));
}

inline __m256i
loadu(const u64 *p)
{
    return _mm256_loadu_si256(reinterpret_cast<const __m256i *>(p));
}

inline void
storeu(u64 *p, __m256i v)
{
    _mm256_storeu_si256(reinterpret_cast<__m256i *>(p), v);
}

/** Low 64 bits of a*b per lane. */
inline __m256i
mulLo64(__m256i a, __m256i b)
{
    __m256i a_hi = _mm256_srli_epi64(a, 32);
    __m256i b_hi = _mm256_srli_epi64(b, 32);
    __m256i ll = _mm256_mul_epu32(a, b);
    __m256i cross = _mm256_add_epi64(_mm256_mul_epu32(a, b_hi),
                                     _mm256_mul_epu32(a_hi, b));
    return _mm256_add_epi64(ll, _mm256_slli_epi64(cross, 32));
}

/** High 64 bits of a*b per lane. */
inline __m256i
mulHi64(__m256i a, __m256i b)
{
    const __m256i mask32 = _mm256_set1_epi64x(0xffffffffLL);
    __m256i a_hi = _mm256_srli_epi64(a, 32);
    __m256i b_hi = _mm256_srli_epi64(b, 32);
    __m256i ll = _mm256_mul_epu32(a, b);
    __m256i lh = _mm256_mul_epu32(a, b_hi);
    __m256i hl = _mm256_mul_epu32(a_hi, b);
    __m256i hh = _mm256_mul_epu32(a_hi, b_hi);
    // mid = (ll >> 32) + lo32(lh) + lo32(hl); each term < 2^32, so the
    // sum fits a 64-bit lane; its top bits are the carry into hi.
    __m256i mid = _mm256_add_epi64(
        _mm256_add_epi64(_mm256_srli_epi64(ll, 32),
                         _mm256_and_si256(lh, mask32)),
        _mm256_and_si256(hl, mask32));
    return _mm256_add_epi64(
        _mm256_add_epi64(hh, _mm256_srli_epi64(mid, 32)),
        _mm256_add_epi64(_mm256_srli_epi64(lh, 32),
                         _mm256_srli_epi64(hl, 32)));
}

/**
 * Full 64x64->128 product per lane, low and high words at once. The
 * four 32x32 partial products are shared between both halves, so a
 * paired lo+hi costs 4 vpmuludq instead of the 7 a separate
 * mulLo64 + mulHi64 would spend.
 */
inline void
mulFull64(__m256i a, __m256i b, __m256i &lo, __m256i &hi)
{
    const __m256i mask32 = _mm256_set1_epi64x(0xffffffffLL);
    __m256i a_hi = _mm256_srli_epi64(a, 32);
    __m256i b_hi = _mm256_srli_epi64(b, 32);
    __m256i ll = _mm256_mul_epu32(a, b);
    __m256i lh = _mm256_mul_epu32(a, b_hi);
    __m256i hl = _mm256_mul_epu32(a_hi, b);
    __m256i hh = _mm256_mul_epu32(a_hi, b_hi);
    __m256i mid = _mm256_add_epi64(
        _mm256_add_epi64(_mm256_srli_epi64(ll, 32),
                         _mm256_and_si256(lh, mask32)),
        _mm256_and_si256(hl, mask32));
    lo = _mm256_add_epi64(_mm256_and_si256(ll, mask32),
                          _mm256_slli_epi64(mid, 32));
    hi = _mm256_add_epi64(
        _mm256_add_epi64(hh, _mm256_srli_epi64(mid, 32)),
        _mm256_add_epi64(_mm256_srli_epi64(lh, 32),
                         _mm256_srli_epi64(hl, 32)));
}

/** All-ones mask where a < b (unsigned). */
inline __m256i
ltU64(__m256i a, __m256i b)
{
    const __m256i sign = _mm256_set1_epi64x(
        static_cast<long long>(0x8000000000000000ULL));
    return _mm256_cmpgt_epi64(_mm256_xor_si256(b, sign),
                              _mm256_xor_si256(a, sign));
}

/** x >= c ? x - c : x, per lane. */
inline __m256i
csubU64(__m256i x, __m256i c)
{
    return _mm256_sub_epi64(x, _mm256_andnot_si256(ltU64(x, c), c));
}

/** Lazy Shoup product: a*w - mulhi(a, wp)*q, wrapping. Result < 2q. */
inline __m256i
mulShoupLazyV(__m256i a, __m256i w, __m256i wp, __m256i q)
{
    __m256i hi = mulHi64(a, wp);
    return _mm256_sub_epi64(mulLo64(a, w), mulLo64(hi, q));
}

/**
 * Lanewise Barrett reduction of 128-bit lane values (hi:lo) mod q —
 * the word-level mirror of Modulus::reduce128. The true remainder
 * before correction is < 3q, so two conditional subtracts land on the
 * canonical residue the scalar while-loop reaches.
 */
inline __m256i
barrettReduceV(__m256i lo, __m256i hi, __m256i qv, __m256i cr0v,
               __m256i cr1v)
{
    __m256i h0 = mulHi64(lo, cr0v);
    __m256i p1lo, p1hi, p2lo, p2hi;
    mulFull64(lo, cr1v, p1lo, p1hi);
    mulFull64(hi, cr0v, p2lo, p2hi);
    __m256i p3lo = mulLo64(hi, cr1v);
    // q_hat = lo64(p3) + hi-words of (h0 + p1 + p2), i.e.
    // p1hi + p2hi plus the carries out of (h0 + p1lo + p2lo).
    __m256i s1 = _mm256_add_epi64(h0, p1lo);
    __m256i c1 = ltU64(s1, p1lo);
    __m256i s2 = _mm256_add_epi64(s1, p2lo);
    __m256i c2 = ltU64(s2, p2lo);
    __m256i qhat = _mm256_add_epi64(_mm256_add_epi64(p3lo, p1hi), p2hi);
    qhat = _mm256_sub_epi64(qhat, c1); // mask is -1: subtract adds 1
    qhat = _mm256_sub_epi64(qhat, c2);
    __m256i r = _mm256_sub_epi64(lo, mulLo64(qhat, qv));
    r = csubU64(r, qv);
    r = csubU64(r, qv);
    return r;
}

// ------------------------------------------------------------------
// Butterflies (t >= 4) with scalar remainders.
// ------------------------------------------------------------------

void
ctAvx2(u64 *data, std::size_t j1, std::size_t len, std::size_t t,
       u64 w, u64 wp, u64 q, u64 two_q)
{
    const __m256i wv = set1(w), wpv = set1(wp), qv = set1(q),
                  tqv = set1(two_q);
    std::size_t j = j1;
    const std::size_t end = j1 + len;
    for (; j + kLanes <= end; j += kLanes) {
        __m256i u = csubU64(loadu(data + j), tqv);
        __m256i v = mulShoupLazyV(loadu(data + j + t), wv, wpv, qv);
        storeu(data + j, _mm256_add_epi64(u, v));
        storeu(data + j + t,
               _mm256_add_epi64(_mm256_sub_epi64(u, v), tqv));
    }
    if (j < end)
        scalarCtButterflies(data, j, end - j, t, w, wp, q, two_q);
}

void
gsAvx2(u64 *data, std::size_t j1, std::size_t len, std::size_t t,
       u64 w, u64 wp, u64 q, u64 two_q)
{
    const __m256i wv = set1(w), wpv = set1(wp), qv = set1(q),
                  tqv = set1(two_q);
    std::size_t j = j1;
    const std::size_t end = j1 + len;
    for (; j + kLanes <= end; j += kLanes) {
        __m256i u = loadu(data + j);
        __m256i v = loadu(data + j + t);
        __m256i s = csubU64(_mm256_add_epi64(u, v), tqv);
        __m256i d = _mm256_add_epi64(_mm256_sub_epi64(u, v), tqv);
        storeu(data + j, s);
        storeu(data + j + t, mulShoupLazyV(d, wv, wpv, qv));
    }
    if (j < end)
        scalarGsButterflies(data, j, end - j, t, w, wp, q, two_q);
}

// ------------------------------------------------------------------
// Interleaved small-stride stages (t = 1, 2). Lanes are deinterleaved
// into (u, v) vectors with matching per-lane twiddles, butterflied,
// and re-interleaved; the lane order within a vector is scrambled but
// consistent between data and twiddles, so values are unchanged.
// ------------------------------------------------------------------

struct SmallVecs {
    __m256i u, v, w, wp;
};

inline SmallVecs
loadSmallT1(const u64 *data, const u64 *tw, const u64 *twp)
{
    __m256i a = loadu(data);     // u0 v0 u1 v1
    __m256i b = loadu(data + 4); // u2 v2 u3 v3
    SmallVecs s;
    s.u = _mm256_unpacklo_epi64(a, b); // u0 u2 u1 u3
    s.v = _mm256_unpackhi_epi64(a, b); // v0 v2 v1 v3
    s.w = _mm256_permute4x64_epi64(loadu(tw),
                                   _MM_SHUFFLE(3, 1, 2, 0));
    s.wp = _mm256_permute4x64_epi64(loadu(twp),
                                    _MM_SHUFFLE(3, 1, 2, 0));
    return s;
}

inline void
storeSmallT1(u64 *data, __m256i u, __m256i v)
{
    storeu(data, _mm256_unpacklo_epi64(u, v));
    storeu(data + 4, _mm256_unpackhi_epi64(u, v));
}

inline SmallVecs
loadSmallT2(const u64 *data, const u64 *tw, const u64 *twp)
{
    __m256i a = loadu(data);     // u0 u1 v0 v1  (group g)
    __m256i b = loadu(data + 4); // group g+1
    SmallVecs s;
    s.u = _mm256_permute2x128_si256(a, b, 0x20);
    s.v = _mm256_permute2x128_si256(a, b, 0x31);
    __m128i w2 = _mm_loadu_si128(reinterpret_cast<const __m128i *>(tw));
    __m128i wp2 =
        _mm_loadu_si128(reinterpret_cast<const __m128i *>(twp));
    // 0x50 selects lanes (0,0,1,1): [w_g, w_g, w_g1, w_g1].
    s.w = _mm256_permute4x64_epi64(_mm256_castsi128_si256(w2), 0x50);
    s.wp = _mm256_permute4x64_epi64(_mm256_castsi128_si256(wp2), 0x50);
    return s;
}

inline void
storeSmallT2(u64 *data, __m256i u, __m256i v)
{
    storeu(data, _mm256_permute2x128_si256(u, v, 0x20));
    storeu(data + 4, _mm256_permute2x128_si256(u, v, 0x31));
}

bool
ctSmallAvx2(u64 *data, std::size_t start, std::size_t count,
            std::size_t t, const u64 *w, const u64 *wp, u64 q,
            u64 two_q)
{
    if ((t != 1 && t != 2) || count % (2 * kLanes) != 0)
        return false;
    const __m256i qv = set1(q), tqv = set1(two_q);
    const std::size_t tw_step = kLanes / t;
    for (std::size_t off = start; off < start + count;
         off += 2 * kLanes, w += tw_step, wp += tw_step) {
        SmallVecs s = t == 1 ? loadSmallT1(data + off, w, wp)
                             : loadSmallT2(data + off, w, wp);
        __m256i u = csubU64(s.u, tqv);
        __m256i v = mulShoupLazyV(s.v, s.w, s.wp, qv);
        __m256i ou = _mm256_add_epi64(u, v);
        __m256i ov = _mm256_add_epi64(_mm256_sub_epi64(u, v), tqv);
        if (t == 1)
            storeSmallT1(data + off, ou, ov);
        else
            storeSmallT2(data + off, ou, ov);
    }
    return true;
}

bool
gsSmallAvx2(u64 *data, std::size_t start, std::size_t count,
            std::size_t t, const u64 *w, const u64 *wp, u64 q,
            u64 two_q)
{
    if ((t != 1 && t != 2) || count % (2 * kLanes) != 0)
        return false;
    const __m256i qv = set1(q), tqv = set1(two_q);
    const std::size_t tw_step = kLanes / t;
    for (std::size_t off = start; off < start + count;
         off += 2 * kLanes, w += tw_step, wp += tw_step) {
        SmallVecs s = t == 1 ? loadSmallT1(data + off, w, wp)
                             : loadSmallT2(data + off, w, wp);
        __m256i sum = csubU64(_mm256_add_epi64(s.u, s.v), tqv);
        __m256i d =
            _mm256_add_epi64(_mm256_sub_epi64(s.u, s.v), tqv);
        __m256i ov = mulShoupLazyV(d, s.w, s.wp, qv);
        if (t == 1)
            storeSmallT1(data + off, sum, ov);
        else
            storeSmallT2(data + off, sum, ov);
    }
    return true;
}

struct Avx2Kernels {
    static constexpr std::size_t kLanes = 4;
    static void ct(u64 *data, std::size_t j1, std::size_t len,
                   std::size_t t, u64 w, u64 wp, u64 q, u64 two_q)
    {
        ctAvx2(data, j1, len, t, w, wp, q, two_q);
    }
    static void gs(u64 *data, std::size_t j1, std::size_t len,
                   std::size_t t, u64 w, u64 wp, u64 q, u64 two_q)
    {
        gsAvx2(data, j1, len, t, w, wp, q, two_q);
    }
    static bool ctSmall(u64 *data, std::size_t start, std::size_t count,
                        std::size_t t, const u64 *w, const u64 *wp,
                        u64 q, u64 two_q)
    {
        return ctSmallAvx2(data, start, count, t, w, wp, q, two_q);
    }
    static bool gsSmall(u64 *data, std::size_t start, std::size_t count,
                        std::size_t t, const u64 *w, const u64 *wp,
                        u64 q, u64 two_q)
    {
        return gsSmallAvx2(data, start, count, t, w, wp, q, two_q);
    }
};

void
nttFwdTailAvx2(u64 *data, std::size_t n, std::size_t first_m,
               std::size_t block, std::size_t nblocks, const u64 *w,
               const u64 *wp, u64 q)
{
    nttFwdTail<Avx2Kernels>(data, n, first_m, block, nblocks, w, wp, q);
}

void
nttInvHeadAvx2(u64 *data, std::size_t n, std::size_t last_m,
               std::size_t block, std::size_t nblocks, const u64 *w,
               const u64 *wp, u64 q)
{
    nttInvHead<Avx2Kernels>(data, n, last_m, block, nblocks, w, wp, q);
}

// ------------------------------------------------------------------
// Element-wise kernels.
// ------------------------------------------------------------------

void
canonFrom4qAvx2(u64 *data, std::size_t count, u64 q)
{
    const __m256i qv = set1(q), tqv = set1(2 * q);
    std::size_t j = 0;
    for (; j + kLanes <= count; j += kLanes) {
        __m256i x = loadu(data + j);
        x = csubU64(x, tqv);
        x = csubU64(x, qv);
        storeu(data + j, x);
    }
    if (j < count)
        scalarCanonFrom4q(data + j, count - j, q);
}

void
scaleShoupCanonAvx2(u64 *data, std::size_t count, u64 w, u64 wp, u64 q)
{
    const __m256i wv = set1(w), wpv = set1(wp), qv = set1(q);
    std::size_t j = 0;
    for (; j + kLanes <= count; j += kLanes) {
        __m256i x = mulShoupLazyV(loadu(data + j), wv, wpv, qv);
        storeu(data + j, csubU64(x, qv));
    }
    if (j < count)
        scalarScaleShoupCanon(data + j, count - j, w, wp, q);
}

void
mulShoupStrictAvx2(const u64 *in, u64 *out, std::size_t count, u64 w,
                   u64 wp, u64 q)
{
    const __m256i wv = set1(w), wpv = set1(wp), qv = set1(q);
    std::size_t j = 0;
    for (; j + kLanes <= count; j += kLanes) {
        __m256i x = mulShoupLazyV(loadu(in + j), wv, wpv, qv);
        storeu(out + j, csubU64(x, qv));
    }
    if (j < count)
        scalarMulShoupStrict(in + j, out + j, count - j, w, wp, q);
}

void
addModVecAvx2(u64 *dst, const u64 *src, std::size_t count, u64 q)
{
    const __m256i qv = set1(q);
    std::size_t j = 0;
    for (; j + kLanes <= count; j += kLanes) {
        __m256i s = _mm256_add_epi64(loadu(dst + j), loadu(src + j));
        storeu(dst + j, csubU64(s, qv));
    }
    if (j < count)
        scalarAddModVec(dst + j, src + j, count - j, q);
}

void
subModVecAvx2(u64 *dst, const u64 *src, std::size_t count, u64 q)
{
    const __m256i qv = set1(q);
    std::size_t j = 0;
    for (; j + kLanes <= count; j += kLanes) {
        __m256i a = loadu(dst + j);
        __m256i b = loadu(src + j);
        __m256i d = _mm256_sub_epi64(a, b);
        d = _mm256_add_epi64(d, _mm256_and_si256(ltU64(a, b), qv));
        storeu(dst + j, d);
    }
    if (j < count)
        scalarSubModVec(dst + j, src + j, count - j, q);
}

void
negModVecAvx2(u64 *dst, std::size_t count, u64 q)
{
    const __m256i qv = set1(q), zero = _mm256_setzero_si256();
    std::size_t j = 0;
    for (; j + kLanes <= count; j += kLanes) {
        __m256i a = loadu(dst + j);
        __m256i eq = _mm256_cmpeq_epi64(a, zero);
        storeu(dst + j,
               _mm256_andnot_si256(eq, _mm256_sub_epi64(qv, a)));
    }
    if (j < count)
        scalarNegModVec(dst + j, count - j, q);
}

void
mulModVecAvx2(u64 *dst, const u64 *src, std::size_t count,
              const Modulus &m)
{
    const __m256i qv = set1(m.value());
    const __m256i cr0v = set1(m.barrettLo());
    const __m256i cr1v = set1(m.barrettHi());
    std::size_t j = 0;
    for (; j + kLanes <= count; j += kLanes) {
        __m256i a = loadu(dst + j);
        __m256i b = loadu(src + j);
        __m256i lo, hi;
        mulFull64(a, b, lo, hi);
        storeu(dst + j, barrettReduceV(lo, hi, qv, cr0v, cr1v));
    }
    if (j < count)
        scalarMulModVec(dst + j, src + j, count - j, m);
}

void
bconvAccAvx2(const u64 *const *scaled, std::size_t k, const u64 *col,
             std::size_t count, const Modulus &p,
             std::size_t fold_every, u64 /*max_scaled*/, u64 *out)
{
    const u64 pv = p.value();
    const __m256i qv = set1(pv);
    const __m256i cr0v = set1(p.barrettLo());
    const __m256i cr1v = set1(p.barrettHi());
    // Rare overflow-guard fold: per-lane 128-bit residue. Only
    // reached when the modulus mix makes fold_every < k.
    auto fold = [&](__m256i &acc_lo, __m256i &acc_hi) {
        alignas(32) u64 lo[kLanes], hi[kLanes];
        storeu(lo, acc_lo);
        storeu(hi, acc_hi);
        for (std::size_t l = 0; l < kLanes; ++l) {
            u128 a = ((u128)hi[l] << 64) | lo[l];
            a %= pv;
            lo[l] = static_cast<u64>(a);
            hi[l] = static_cast<u64>(a >> 64);
        }
        acc_lo = loadu(lo);
        acc_hi = loadu(hi);
    };
    std::size_t c = 0;
    // Two independent accumulator pairs hide the add/carry dependency
    // chain; the fused full multiply shares its 32x32 partials.
    for (; c + 2 * kLanes <= count; c += 2 * kLanes) {
        __m256i acc_lo0 = _mm256_setzero_si256();
        __m256i acc_hi0 = _mm256_setzero_si256();
        __m256i acc_lo1 = _mm256_setzero_si256();
        __m256i acc_hi1 = _mm256_setzero_si256();
        std::size_t since = 0;
        for (std::size_t i = 0; i < k; ++i) {
            __m256i cv = set1(col[i]);
            __m256i x0 = loadu(scaled[i] + c);
            __m256i x1 = loadu(scaled[i] + c + kLanes);
            __m256i t_lo0, t_hi0, t_lo1, t_hi1;
            mulFull64(x0, cv, t_lo0, t_hi0);
            mulFull64(x1, cv, t_lo1, t_hi1);
            acc_lo0 = _mm256_add_epi64(acc_lo0, t_lo0);
            // carry mask is -1 where the low word wrapped
            acc_hi0 = _mm256_sub_epi64(_mm256_add_epi64(acc_hi0, t_hi0),
                                       ltU64(acc_lo0, t_lo0));
            acc_lo1 = _mm256_add_epi64(acc_lo1, t_lo1);
            acc_hi1 = _mm256_sub_epi64(_mm256_add_epi64(acc_hi1, t_hi1),
                                       ltU64(acc_lo1, t_lo1));
            if (++since == fold_every) {
                fold(acc_lo0, acc_hi0);
                fold(acc_lo1, acc_hi1);
                since = 0;
            }
        }
        storeu(out + c,
               barrettReduceV(acc_lo0, acc_hi0, qv, cr0v, cr1v));
        storeu(out + c + kLanes,
               barrettReduceV(acc_lo1, acc_hi1, qv, cr0v, cr1v));
    }
    for (; c + kLanes <= count; c += kLanes) {
        __m256i acc_lo = _mm256_setzero_si256();
        __m256i acc_hi = _mm256_setzero_si256();
        std::size_t since = 0;
        for (std::size_t i = 0; i < k; ++i) {
            __m256i x = loadu(scaled[i] + c);
            __m256i cv = set1(col[i]);
            __m256i t_lo, t_hi;
            mulFull64(x, cv, t_lo, t_hi);
            acc_lo = _mm256_add_epi64(acc_lo, t_lo);
            acc_hi = _mm256_sub_epi64(_mm256_add_epi64(acc_hi, t_hi),
                                      ltU64(acc_lo, t_lo));
            if (++since == fold_every) {
                fold(acc_lo, acc_hi);
                since = 0;
            }
        }
        storeu(out + c, barrettReduceV(acc_lo, acc_hi, qv, cr0v, cr1v));
    }
    if (c < count) {
        // Scalar tail over the remaining coefficients.
        for (std::size_t cc = c; cc < count; ++cc) {
            u128 acc = 0;
            std::size_t since = 0;
            for (std::size_t i = 0; i < k; ++i) {
                acc += (u128)scaled[i][cc] * col[i];
                if (++since == fold_every) {
                    acc %= pv;
                    since = 0;
                }
            }
            out[cc] = p.reduce128(acc);
        }
    }
}

} // namespace

const SimdOps kAvx2Ops = {
    SimdIsa::avx2,
    "avx2",
    &ctAvx2,
    &gsAvx2,
    &nttFwdTailAvx2,
    &nttInvHeadAvx2,
    &canonFrom4qAvx2,
    &scaleShoupCanonAvx2,
    &mulShoupStrictAvx2,
    &addModVecAvx2,
    &subModVecAvx2,
    &negModVecAvx2,
    &mulModVecAvx2,
    &bconvAccAvx2,
};

} // namespace fast::math::simd_detail

#endif // FAST_SIMD_HAVE_AVX2
