/**
 * @file
 * Runtime-dispatched SIMD kernel backend (DESIGN.md §15).
 *
 * Every hot inner loop in the functional layer — NTT butterflies, the
 * BConv inner product, and the element-wise polynomial ops — routes
 * through a table of kernel function pointers (`SimdOps`). Three
 * implementations of the table exist:
 *
 *  - scalar:  plain C++, compiled with the project's default flags;
 *             byte-for-byte the pre-SIMD kernel code.
 *  - avx2:    4-lane 64-bit kernels (64x64->128 mulhi emulated via
 *             _mm256_mul_epu32 cross products), compiled with -mavx2
 *             in its own translation unit.
 *  - avx512:  8-lane kernels using AVX-512F/DQ (vpmullq, unsigned
 *             mask compares, permutex2var butterfly interleaving),
 *             compiled with -mavx512f -mavx512dq. On CPUs with
 *             AVX-512 IFMA, the avx512 tier transparently swaps in a
 *             variant table ("avx512-ifma") whose Shoup multiplies
 *             and BConv accumulation use vpmadd52lo/hi 52-bit fused
 *             multiply-adds; kernels fall back to the generic AVX-512
 *             code per call when a modulus is too wide (q >= 2^50 for
 *             butterflies, operands >= 2^52 for BConv), so outputs
 *             stay bit-identical for every modulus size.
 *
 * Dispatch rules
 * --------------
 * The active table is chosen once, on first use:
 *   1. `FAST_SIMD=scalar|avx2|avx512` forces a path (testing hook);
 *      an unsupported request falls back to the best supported path
 *      at or below it.
 *   2. Otherwise CPUID picks the widest ISA both compiled in and
 *      supported by the host (AVX-512 needs F+DQ).
 * Tests and benches may switch paths with setSimdIsa(); switching
 * while kernels are in flight on other threads is not supported.
 *
 * Exactness contract
 * ------------------
 * Every vector kernel computes bit-identical results to the scalar
 * table: butterflies replicate the exact lazy-reduction arithmetic
 * (wrapping 64-bit ops, same operand order), and full reductions
 * (Barrett, Shoup-strict) produce canonical residues, which are
 * unique. The PR-5 testkit differential oracle and
 * tests/math/simd_test.cpp pin this for every supported path.
 */
#ifndef FAST_MATH_SIMD_HPP
#define FAST_MATH_SIMD_HPP

#include <cstddef>

#include "math/modarith.hpp"

namespace fast::math {

/** Instruction-set tiers, widest last. */
enum class SimdIsa { scalar = 0, avx2 = 1, avx512 = 2 };

/** Kernel-table entry points; one table per ISA tier. */
struct SimdOps {
    SimdIsa isa;
    const char *name;

    /**
     * Cooley-Tukey butterflies j in [j1, j1+len) with partner j+t and
     * one Shoup twiddle (w, wp). Lazy: inputs < 4q, outputs < 4q.
     */
    void (*ct_butterflies)(u64 *data, std::size_t j1, std::size_t len,
                           std::size_t t, u64 w, u64 wp, u64 q,
                           u64 two_q);

    /**
     * Gentleman-Sande butterflies, same indexing. Lazy: inputs < 2q,
     * outputs < 2q.
     */
    void (*gs_butterflies)(u64 *data, std::size_t j1, std::size_t len,
                           std::size_t t, u64 w, u64 wp, u64 q,
                           u64 two_q);

    /**
     * Forward stages m = first_m, 2*first_m, ..., n/2 restricted to
     * coefficient block @p block of @p nblocks (groups
     * i in [block*(m/nblocks), (block+1)*(m/nblocks)) per stage).
     * first_m == nblocks == 1 runs the whole transform's stage loop.
     * Twiddles are read as w[m+i] from the full bit-reversed table.
     * Small-stride stages (t below the lane width) use interleaved
     * shuffle kernels on the vector paths.
     */
    void (*ntt_fwd_tail)(u64 *data, std::size_t n, std::size_t first_m,
                         std::size_t block, std::size_t nblocks,
                         const u64 *w, const u64 *wp, u64 q);

    /**
     * Inverse stages m = n/2 down to last_m restricted to block
     * @p block of @p nblocks; the mirror of ntt_fwd_tail.
     */
    void (*ntt_inv_head)(u64 *data, std::size_t n, std::size_t last_m,
                         std::size_t block, std::size_t nblocks,
                         const u64 *w, const u64 *wp, u64 q);

    /** Canonicalize lazy values: [0, 4q) -> [0, q). */
    void (*canon_from_4q)(u64 *data, std::size_t count, u64 q);

    /**
     * data[j] = canonical mulModShoup(data[j], w, wp, q) for values in
     * [0, 2q) — the inverse NTT's N^-1 scaling pass.
     */
    void (*scale_shoup_canon)(u64 *data, std::size_t count, u64 w,
                              u64 wp, u64 q);

    /**
     * out[j] = mulModShoup(in[j], w, wp, q), strict reduction. in ==
     * out is allowed. Inputs must be canonical residues (< q) — the
     * IFMA kernel needs operands below 2^52 and every caller scales
     * canonical limb data.
     */
    void (*mul_shoup_strict)(const u64 *in, u64 *out,
                             std::size_t count, u64 w, u64 wp, u64 q);

    /** dst[j] = addMod(dst[j], src[j], q). */
    void (*add_mod_vec)(u64 *dst, const u64 *src, std::size_t count,
                        u64 q);
    /** dst[j] = subMod(dst[j], src[j], q). */
    void (*sub_mod_vec)(u64 *dst, const u64 *src, std::size_t count,
                        u64 q);
    /** dst[j] = negMod(dst[j], q). */
    void (*neg_mod_vec)(u64 *dst, std::size_t count, u64 q);
    /** dst[j] = mulMod(dst[j], src[j], m) via lanewise Barrett. */
    void (*mul_mod_vec)(u64 *dst, const u64 *src, std::size_t count,
                        const Modulus &m);

    /**
     * BConv inner product over one output limb:
     * out[c] = (sum_i scaled[i][c] * col[i]) mod p for c in
     * [0, count), accumulated in 128-bit lanes with a congruence-
     * preserving fold every @p fold_every terms (overflow guard; the
     * caller precomputes it from the operand widths). @p max_scaled is
     * an exclusive upper bound on the scaled[i][c] values (the largest
     * input modulus); kernels that need narrower operands — the IFMA
     * 52-bit accumulator — use it to decide whether they may engage.
     * The final reduction is canonical, so any fold schedule yields
     * the same residues.
     */
    void (*bconv_acc)(const u64 *const *scaled, std::size_t k,
                      const u64 *col, std::size_t count,
                      const Modulus &p, std::size_t fold_every,
                      u64 max_scaled, u64 *out);
};

/** True when the ISA's kernel table was compiled into this binary. */
bool simdIsaCompiled(SimdIsa isa);

/** True when @p isa is compiled in AND supported by the host CPU. */
bool simdIsaSupported(SimdIsa isa);

/** The widest supported ISA (what dispatch picks absent FAST_SIMD). */
SimdIsa bestSimdIsa();

/** The currently active ISA (resolves FAST_SIMD on first call). */
SimdIsa activeSimdIsa();

/**
 * Force the active kernel table (test/bench hook). Returns false and
 * leaves the table unchanged when @p isa is unsupported. Must not be
 * called while kernels run on other threads.
 */
bool setSimdIsa(SimdIsa isa);

/** Human-readable ISA name ("scalar", "avx2", "avx512"). */
const char *simdIsaName(SimdIsa isa);

/** The active kernel table. */
const SimdOps &simdOps();

} // namespace fast::math

#endif // FAST_MATH_SIMD_HPP
