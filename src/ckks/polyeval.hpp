/**
 * @file
 * Homomorphic polynomial evaluation.
 *
 * CKKS supports non-linear functions only through polynomial
 * approximation (Sec. 2.2.2 of the FAST paper — e.g. ReLU via a
 * degree-~40 polynomial, the sigmoid in HELR, the scaled sine in
 * EvalMod). This module provides:
 *
 *  - Chebyshev interpolation of arbitrary real functions on [a, b];
 *  - depth-optimal homomorphic evaluation of Chebyshev series using
 *    the T_{2k} = 2T_k^2 - 1 / T_{2k+1} = 2T_{k+1}T_k - T_1
 *    recurrences (log-depth, the same machinery bootstrapping's
 *    EvalMod uses);
 *  - monomial-basis evaluation for low-degree polynomials.
 */
#ifndef FAST_CKKS_POLYEVAL_HPP
#define FAST_CKKS_POLYEVAL_HPP

#include <functional>
#include <vector>

#include "ckks/evaluator.hpp"

namespace fast::ckks {

/**
 * A polynomial in Chebyshev basis over [domain_min, domain_max]:
 * f(x) ~ c_0 + sum_{j>=1} c_j T_j(u), u = affine map of x to [-1,1].
 */
struct ChebyshevSeries {
    std::vector<double> coeffs;  ///< c_0 is the true constant term
    double domain_min = -1;
    double domain_max = 1;

    std::size_t degree() const
    {
        return coeffs.empty() ? 0 : coeffs.size() - 1;
    }

    /** Evaluate in plaintext (for testing / error analysis). */
    double operator()(double x) const;

    /**
     * Interpolate @p f at degree @p degree Chebyshev nodes on
     * [a, b]. Error decays near-exponentially for smooth f.
     */
    static ChebyshevSeries fit(const std::function<double(double)> &f,
                               double a, double b, std::size_t degree);

    /** Max |f - fit| sampled on the domain (model quality check). */
    double maxError(const std::function<double(double)> &f,
                    std::size_t samples = 512) const;
};

/**
 * Homomorphic polynomial evaluator bound to a CkksEvaluator.
 */
class PolynomialEvaluator
{
  public:
    explicit PolynomialEvaluator(const CkksEvaluator &eval)
        : eval_(eval)
    {
    }

    /**
     * Evaluate a Chebyshev series on a ciphertext. Consumes
     * ceil(log2(degree)) + 2 levels. The input's slots must lie in
     * the series' domain.
     */
    Ciphertext evaluate(const Ciphertext &ct,
                        const ChebyshevSeries &series,
                        const EvalKey &relin_key) const;

    /**
     * Evaluate sum_k a_k x^k (monomial basis) for small degrees;
     * coefficients indexed by power.
     */
    Ciphertext evaluateMonomial(const Ciphertext &ct,
                                const std::vector<double> &coeffs,
                                const EvalKey &relin_key) const;

    /** Multiplicative depth evaluate() will consume. */
    static std::size_t depthFor(std::size_t degree);

  private:
    /** Align two ciphertexts to a common level and scale. */
    std::pair<Ciphertext, Ciphertext> aligned(Ciphertext a,
                                              Ciphertext b) const;

    const CkksEvaluator &eval_;
};

/** Ready-made approximations used across the paper's workloads. */
namespace approx {

/** ReLU(x) ~ x * (0.5 + 0.5 * tanh-like sign approx) on [-bound, bound]. */
ChebyshevSeries relu(double bound, std::size_t degree = 27);

/** Logistic sigmoid on [-bound, bound]. */
ChebyshevSeries sigmoid(double bound, std::size_t degree = 15);

/** exp(x) on [-bound, bound]. */
ChebyshevSeries exponential(double bound, std::size_t degree = 15);

} // namespace approx

} // namespace fast::ckks

#endif // FAST_CKKS_POLYEVAL_HPP
