/**
 * @file
 * Implementation of the canonical-embedding encoder.
 */
#include "ckks/encoder.hpp"

#include <cmath>
#include <stdexcept>

#include "math/bignum.hpp"
#include "math/bitops.hpp"
#include "math/rns.hpp"

namespace fast::ckks {

using math::bitReverse;

CkksEncoder::CkksEncoder(std::size_t degree) : n_(degree)
{
    if (degree == 0 || (degree & (degree - 1)) != 0)
        throw std::invalid_argument("degree must be a power of two");
    log_n_ = 0;
    while ((std::size_t(1) << log_n_) < n_)
        ++log_n_;

    roots_.resize(n_);
    const double pi = std::acos(-1.0);
    for (std::size_t i = 0; i < n_; ++i) {
        std::size_t r = bitReverse(i, log_n_);
        double angle = pi * static_cast<double>(r) /
                       static_cast<double>(n_);
        roots_[i] = Complex(std::cos(angle), std::sin(angle));
    }

    // Slot j evaluates at psi^{5^j mod 2N}; eval index k holds the
    // point psi^{2*br(k)+1}, so k = br((5^j - 1) / 2).
    std::size_t half = n_ / 2;
    slot_to_eval_.resize(half);
    slot_to_eval_conj_.resize(half);
    u64 two_n = 2 * n_;
    u64 e = 1;
    for (std::size_t j = 0; j < half; ++j) {
        slot_to_eval_[j] =
            bitReverse(static_cast<std::size_t>((e - 1) / 2), log_n_);
        u64 e_conj = two_n - e;
        slot_to_eval_conj_[j] =
            bitReverse(static_cast<std::size_t>((e_conj - 1) / 2),
                       log_n_);
        e = (e * 5) % two_n;
    }
}

void
CkksEncoder::forwardFft(std::vector<Complex> &data) const
{
    std::size_t t = n_;
    for (std::size_t m = 1; m < n_; m <<= 1) {
        t >>= 1;
        for (std::size_t i = 0; i < m; ++i) {
            std::size_t j1 = 2 * i * t;
            Complex w = roots_[m + i];
            for (std::size_t j = j1; j < j1 + t; ++j) {
                Complex u = data[j];
                Complex v = data[j + t] * w;
                data[j] = u + v;
                data[j + t] = u - v;
            }
        }
    }
}

void
CkksEncoder::inverseFft(std::vector<Complex> &data) const
{
    std::size_t t = 1;
    for (std::size_t m = n_ >> 1; m >= 1; m >>= 1) {
        std::size_t j1 = 0;
        for (std::size_t i = 0; i < m; ++i) {
            Complex w = std::conj(roots_[m + i]);
            for (std::size_t j = j1; j < j1 + t; ++j) {
                Complex u = data[j];
                Complex v = data[j + t];
                data[j] = u + v;
                data[j + t] = (u - v) * w;
            }
            j1 += 2 * t;
        }
        t <<= 1;
    }
    double inv_n = 1.0 / static_cast<double>(n_);
    for (auto &v : data)
        v *= inv_n;
}

std::vector<Complex>
CkksEncoder::embed(const std::vector<Complex> &coeffs) const
{
    std::vector<Complex> data = coeffs;
    data.resize(n_, Complex(0, 0));
    forwardFft(data);
    std::vector<Complex> slots(n_ / 2);
    for (std::size_t j = 0; j < slots.size(); ++j)
        slots[j] = data[slot_to_eval_[j]];
    return slots;
}

std::vector<Complex>
CkksEncoder::embedInverse(const std::vector<Complex> &slots) const
{
    if (slots.size() != n_ / 2)
        throw std::invalid_argument("embedInverse needs N/2 slots");
    std::vector<Complex> data(n_);
    for (std::size_t j = 0; j < slots.size(); ++j) {
        data[slot_to_eval_[j]] = slots[j];
        data[slot_to_eval_conj_[j]] = std::conj(slots[j]);
    }
    inverseFft(data);
    return data;
}

RnsPoly
CkksEncoder::encode(const std::vector<Complex> &values, double scale,
                    const std::vector<u64> &moduli) const
{
    std::size_t half = n_ / 2;
    if (values.empty() || half % values.size() != 0)
        throw std::invalid_argument(
            "message length must divide the slot count");
    std::vector<Complex> full(half);
    for (std::size_t j = 0; j < half; ++j)
        full[j] = values[j % values.size()];

    auto coeffs = embedInverse(full);
    RnsPoly poly(n_, moduli, math::PolyForm::coeff);
    for (std::size_t k = 0; k < n_; ++k) {
        double v = coeffs[k].real() * scale;
        if (std::abs(v) >= 9.0e18)
            throw std::overflow_error("encoded coefficient overflow");
        poly.setCoefficient(k, static_cast<math::i64>(std::llround(v)));
    }
    return poly;
}

std::vector<Complex>
CkksEncoder::decode(const RnsPoly &poly, double scale,
                    std::size_t slot_count) const
{
    if (poly.form() != math::PolyForm::coeff)
        throw std::logic_error("decode requires coeff form");
    std::size_t half = n_ / 2;
    if (slot_count == 0 || half % slot_count != 0)
        throw std::invalid_argument("slot_count must divide N/2");

    // CRT-compose each coefficient and center it against Q.
    math::RnsBasis basis(poly.moduli());
    const math::BigUInt &big_q = basis.product();
    math::BigUInt half_q = big_q >> 1;
    std::vector<Complex> coeffs(n_);
    for (std::size_t k = 0; k < n_; ++k) {
        math::BigUInt v = basis.compose(poly.coefficientResidues(k));
        double d = v > half_q ? -((big_q - v).toDouble())
                              : v.toDouble();
        coeffs[k] = Complex(d / scale, 0);
    }

    auto slots = embed(coeffs);
    // Average the replicas of a sparse-packed message.
    std::vector<Complex> out(slot_count, Complex(0, 0));
    std::size_t reps = half / slot_count;
    for (std::size_t j = 0; j < half; ++j)
        out[j % slot_count] += slots[j];
    for (auto &v : out)
        v /= static_cast<double>(reps);
    return out;
}

u64
CkksEncoder::galoisForRotation(std::ptrdiff_t steps) const
{
    std::size_t half = n_ / 2;
    std::ptrdiff_t r = steps % static_cast<std::ptrdiff_t>(half);
    if (r < 0)
        r += static_cast<std::ptrdiff_t>(half);
    return math::powMod(5, static_cast<u64>(r), 2 * n_);
}

} // namespace fast::ckks
