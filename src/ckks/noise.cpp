/**
 * @file
 * Implementation of the noise inspector.
 */
#include "ckks/noise.hpp"

#include <cmath>

namespace fast::ckks {

NoiseReport
NoiseInspector::measure(const Ciphertext &ct,
                        const std::vector<Complex> &expected) const
{
    auto decoded = eval_.decryptDecode(ct, sk_, expected.size());
    NoiseReport report;
    report.level = ct.level();
    report.log2_scale = std::log2(ct.scale);
    double sum = 0;
    for (std::size_t j = 0; j < expected.size(); ++j) {
        double err = std::abs(decoded[j] - expected[j]);
        report.max_abs_error = std::max(report.max_abs_error, err);
        sum += err;
    }
    report.mean_abs_error = sum / static_cast<double>(expected.size());
    report.precision_bits =
        report.max_abs_error > 0 ? -std::log2(report.max_abs_error)
                                 : 52.0;
    return report;
}

double
NoiseInspector::budgetBits(const Ciphertext &ct) const
{
    double q_bits = 0;
    for (std::size_t i = 0; i < ct.limbCount(); ++i)
        q_bits += std::log2(static_cast<double>(ct.c0.modulus(i)));
    return q_bits - std::log2(ct.scale);
}

} // namespace fast::ckks
