/**
 * @file
 * CKKS parameter sets.
 *
 * Mirrors Table 2 of the FAST paper plus reduced test-scale sets that
 * exercise the identical code paths at interactive speed. A parameter
 * set fixes the ring degree N, the modulus chain q_0..q_L, the special
 * (auxiliary) primes P used by key-switching, the hybrid digit size
 * alpha, and the KLSS gadget digit width v.
 */
#ifndef FAST_CKKS_PARAMS_HPP
#define FAST_CKKS_PARAMS_HPP

#include <cstddef>
#include <string>
#include <vector>

#include "math/modarith.hpp"

namespace fast::ckks {

using math::u64;

/** Which key-switching algorithm a key / operation uses (Sec. 2.1.3). */
enum class KeySwitchMethod {
    hybrid,  ///< ModUp / KeyMult / ModDown over beta digit groups
    klss,    ///< gadget (digit) decomposition with 60-bit digits
};

/** Human-readable method name. */
const char *toString(KeySwitchMethod method);

/**
 * How the ModUp–KeyMult–ModDown pipeline of one key switch is
 * scheduled on the datapath (CiFlow, PAPERS.md). The dataflow never
 * changes the key material or the numeric result — only the kernel
 * schedule the simulator charges for:
 *
 *  - `standard`:  the textbook pipeline (every stage materialized);
 *  - `reordered`: CiFlow-style NTT reordering — the ModDown output
 *                 transforms merge with the consumer's input
 *                 transforms, halving the ModDown (I)NTT volume;
 *  - `fused`:     ModUp–KeyMult–ModDown fusion — digits stream
 *                 through the KMU without re-materializing, folding
 *                 the ModDown rescale into the accumulation pass.
 */
enum class KeySwitchDataflow {
    standard,
    reordered,
    fused,
};

/** Human-readable dataflow name. */
const char *toString(KeySwitchDataflow dataflow);

/** Working kernel bit-width of a method (TBM dual-36 vs 60-bit). */
int defaultMethodBits(KeySwitchMethod method);

/**
 * Full description of one key switch: algorithm x datapath schedule,
 * plus the kernel bit-width the method's arithmetic runs at. This is
 * the descriptor threaded through Aether/Hemera/Lowering instead of a
 * bare `KeySwitchMethod` (the enum remains as the algorithm half).
 */
struct KeySwitchVariant {
    KeySwitchMethod method = KeySwitchMethod::hybrid;
    KeySwitchDataflow dataflow = KeySwitchDataflow::standard;
    int bits = 36;  ///< kernel width (36 hybrid / 60 KLSS by default)

    /** Variant with the method's default bit-width. */
    static KeySwitchVariant of(
        KeySwitchMethod m,
        KeySwitchDataflow d = KeySwitchDataflow::standard)
    {
        return KeySwitchVariant{m, d, defaultMethodBits(m)};
    }

    friend bool operator==(const KeySwitchVariant &a,
                           const KeySwitchVariant &b)
    {
        return a.method == b.method && a.dataflow == b.dataflow &&
               a.bits == b.bits;
    }
    friend bool operator!=(const KeySwitchVariant &a,
                           const KeySwitchVariant &b)
    {
        return !(a == b);
    }
    friend bool operator<(const KeySwitchVariant &a,
                          const KeySwitchVariant &b)
    {
        if (a.method != b.method)
            return a.method < b.method;
        if (a.dataflow != b.dataflow)
            return a.dataflow < b.dataflow;
        return a.bits < b.bits;
    }
};

/** "Hybrid", "KLSS/reordered", "Hybrid/fused@60", ... */
std::string toString(const KeySwitchVariant &variant);

/**
 * A complete CKKS parameter set.
 */
struct CkksParams {
    std::string name;          ///< e.g. "Set-I", "Test-S"
    std::size_t degree = 0;    ///< ring degree N (power of two)
    std::size_t slots = 0;     ///< message slots n <= N/2
    std::vector<u64> q_chain;  ///< q_0..q_L (level i uses q_0..q_i)
    std::vector<u64> p_chain;  ///< special primes (product P)
    std::size_t alpha = 1;     ///< limbs per hybrid decomposition group
    int digit_bits = 60;       ///< KLSS gadget digit width v
    std::vector<u64> t_basis;  ///< 60-bit auxiliary basis R_T for KLSS
    double scale = 0;          ///< default encoding scale (Delta)
    double noise_sigma = 3.2;  ///< RLWE error standard deviation
    std::size_t secret_hamming = 0;  ///< sparse secret weight (0 = dense)

    /** Maximum multiplicative level L (chain has L+1 primes). */
    std::size_t maxLevel() const { return q_chain.size() - 1; }

    /** Number of limbs of a ciphertext at level ell. */
    std::size_t limbsAtLevel(std::size_t ell) const { return ell + 1; }

    /** Number of hybrid digit groups beta at level ell. */
    std::size_t betaAtLevel(std::size_t ell) const
    {
        return (limbsAtLevel(ell) + alpha - 1) / alpha;
    }

    /** Number of KLSS gadget digits at level ell. */
    std::size_t gadgetDigitsAtLevel(std::size_t ell) const;

    /** Total modulus bits at level ell (sum of q_i bit sizes). */
    double modulusBitsAtLevel(std::size_t ell) const;

    /** Throws std::invalid_argument when internally inconsistent. */
    void validate() const;

    /**
     * Paper Table 2 Set-I: N=2^16, L=35, alpha=12, 36-bit primes,
     * hybrid key-switching only. Used by the cost models and the
     * simulator (not functionally instantiated in unit tests).
     */
    static CkksParams paperSetI();

    /** Paper Table 2 Set-II: N=2^16, L=35, alpha=5, hybrid + KLSS. */
    static CkksParams paperSetII();

    /**
     * Small functional set: N=2^8, L=4. Fast enough for exhaustive
     * property tests of every homomorphic operation.
     */
    static CkksParams testSmall();

    /**
     * Medium functional set: N=2^12, L=8, alpha=2. Used by the
     * integration tests (key-switching, hoisting, bootstrapping).
     */
    static CkksParams testMedium();

    /** Medium set with a wider gadget digit for KLSS stress tests. */
    static CkksParams testMediumKlss();

    /**
     * Bootstrappable functional set: N=2^12, deeper chain and sparse
     * slots so the full pipeline runs in seconds.
     */
    static CkksParams testBoot();
};

} // namespace fast::ckks

#endif // FAST_CKKS_PARAMS_HPP
