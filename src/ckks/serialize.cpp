/**
 * @file
 * Implementation of binary serialization.
 */
#include "ckks/serialize.hpp"

#include <cstring>
#include <stdexcept>

namespace fast::ckks {

namespace {

constexpr std::uint32_t kPolyMagic = 0x46504f4c;  // "FPOL"
constexpr std::uint32_t kCtMagic = 0x46435458;    // "FCTX"
constexpr std::uint32_t kPtMagic = 0x46505458;    // "FPTX"
constexpr std::uint32_t kKeyMagic = 0x46455648;   // "FEVH"

template <typename T>
void
put(Bytes &out, const T &value)
{
    static_assert(std::is_trivially_copyable_v<T>);
    const auto *p = reinterpret_cast<const std::uint8_t *>(&value);
    out.insert(out.end(), p, p + sizeof(T));
}

template <typename T>
T
take(const Bytes &data, std::size_t &offset)
{
    static_assert(std::is_trivially_copyable_v<T>);
    if (offset + sizeof(T) > data.size())
        throw std::invalid_argument("truncated serialized object");
    T value;
    std::memcpy(&value, data.data() + offset, sizeof(T));
    offset += sizeof(T);
    return value;
}

} // namespace

Bytes
serialize(const math::RnsPoly &poly)
{
    Bytes out;
    put(out, kPolyMagic);
    put(out, static_cast<std::uint64_t>(poly.degree()));
    put(out, static_cast<std::uint64_t>(poly.limbCount()));
    put(out, static_cast<std::uint8_t>(poly.isEval() ? 1 : 0));
    for (std::size_t i = 0; i < poly.limbCount(); ++i)
        put(out, poly.modulus(i));
    for (std::size_t i = 0; i < poly.limbCount(); ++i) {
        const auto &limb = poly.limb(i);
        const auto *p =
            reinterpret_cast<const std::uint8_t *>(limb.data());
        out.insert(out.end(), p, p + limb.size() * sizeof(math::u64));
    }
    return out;
}

math::RnsPoly
deserializePoly(const Bytes &data, std::size_t &offset)
{
    if (take<std::uint32_t>(data, offset) != kPolyMagic)
        throw std::invalid_argument("not a serialized polynomial");
    auto n = static_cast<std::size_t>(take<std::uint64_t>(data, offset));
    auto limbs =
        static_cast<std::size_t>(take<std::uint64_t>(data, offset));
    bool eval = take<std::uint8_t>(data, offset) != 0;
    std::vector<math::u64> moduli(limbs);
    for (auto &m : moduli)
        m = take<math::u64>(data, offset);
    math::RnsPoly poly(n, std::move(moduli),
                       eval ? math::PolyForm::eval
                            : math::PolyForm::coeff);
    for (std::size_t i = 0; i < limbs; ++i) {
        if (offset + n * sizeof(math::u64) > data.size())
            throw std::invalid_argument("truncated polynomial limbs");
        std::memcpy(poly.limb(i).data(), data.data() + offset,
                    n * sizeof(math::u64));
        offset += n * sizeof(math::u64);
    }
    return poly;
}

Bytes
serialize(const Ciphertext &ct)
{
    Bytes out;
    put(out, kCtMagic);
    put(out, ct.scale);
    auto c0 = serialize(ct.c0);
    auto c1 = serialize(ct.c1);
    out.insert(out.end(), c0.begin(), c0.end());
    out.insert(out.end(), c1.begin(), c1.end());
    return out;
}

Ciphertext
deserializeCiphertext(const Bytes &data)
{
    std::size_t offset = 0;
    if (take<std::uint32_t>(data, offset) != kCtMagic)
        throw std::invalid_argument("not a serialized ciphertext");
    Ciphertext ct;
    ct.scale = take<double>(data, offset);
    ct.c0 = deserializePoly(data, offset);
    ct.c1 = deserializePoly(data, offset);
    return ct;
}

Bytes
serialize(const Plaintext &pt)
{
    Bytes out;
    put(out, kPtMagic);
    put(out, pt.scale);
    auto poly = serialize(pt.poly);
    out.insert(out.end(), poly.begin(), poly.end());
    return out;
}

Plaintext
deserializePlaintext(const Bytes &data)
{
    std::size_t offset = 0;
    if (take<std::uint32_t>(data, offset) != kPtMagic)
        throw std::invalid_argument("not a serialized plaintext");
    Plaintext pt;
    pt.scale = take<double>(data, offset);
    pt.poly = deserializePoly(data, offset);
    return pt;
}

Bytes
serialize(const EvalKey &key)
{
    Bytes out;
    put(out, kKeyMagic);
    put(out, static_cast<std::uint8_t>(
                 key.method == KeySwitchMethod::hybrid ? 0 : 1));
    put(out, key.galois);
    put(out, static_cast<std::int32_t>(key.digit_bits));
    put(out, key.seed);
    put(out, static_cast<std::uint64_t>(key.parts.size()));
    // EKG compression: only the b halves are stored.
    for (const auto &part : key.parts) {
        auto b = serialize(part.b);
        out.insert(out.end(), b.begin(), b.end());
    }
    return out;
}

EvalKey
deserializeEvalKey(const Bytes &data, const CkksContext &ctx)
{
    std::size_t offset = 0;
    if (take<std::uint32_t>(data, offset) != kKeyMagic)
        throw std::invalid_argument("not a serialized EvalKey");
    EvalKey key;
    key.method = take<std::uint8_t>(data, offset) == 0
                     ? KeySwitchMethod::hybrid
                     : KeySwitchMethod::klss;
    key.galois = take<math::u64>(data, offset);
    key.digit_bits = take<std::int32_t>(data, offset);
    key.seed = take<math::u64>(data, offset);
    auto parts =
        static_cast<std::size_t>(take<std::uint64_t>(data, offset));
    // Regenerate the a halves from the seed — the on-chip EKG path.
    auto a_halves = expandEvalKeyA(ctx, key.seed, parts);
    key.parts.resize(parts);
    for (std::size_t j = 0; j < parts; ++j) {
        key.parts[j].b = deserializePoly(data, offset);
        key.parts[j].a = std::move(a_halves[j]);
    }
    return key;
}

std::size_t
serializedBytes(const Ciphertext &ct)
{
    auto poly = [](const math::RnsPoly &p) {
        return 4 + 8 + 8 + 1 + p.limbCount() * 8 +
               p.limbCount() * p.degree() * 8;
    };
    return 4 + 8 + poly(ct.c0) + poly(ct.c1);
}

std::size_t
serializedBytes(const EvalKey &key)
{
    std::size_t total = 4 + 1 + 8 + 4 + 8 + 8;
    for (const auto &part : key.parts)
        total += 4 + 8 + 8 + 1 + part.b.limbCount() * 8 +
                 part.b.limbCount() * part.b.degree() * 8;
    return total;
}

} // namespace fast::ckks
