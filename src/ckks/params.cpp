/**
 * @file
 * CKKS parameter set construction.
 */
#include "ckks/params.hpp"

#include <cmath>
#include <stdexcept>

#include "math/primes.hpp"

namespace fast::ckks {

const char *
toString(KeySwitchMethod method)
{
    return method == KeySwitchMethod::hybrid ? "Hybrid" : "KLSS";
}

const char *
toString(KeySwitchDataflow dataflow)
{
    switch (dataflow) {
      case KeySwitchDataflow::standard: return "standard";
      case KeySwitchDataflow::reordered: return "reordered";
      case KeySwitchDataflow::fused: return "fused";
    }
    return "?";
}

int
defaultMethodBits(KeySwitchMethod method)
{
    // Hybrid arithmetic runs in the TBM's dual-36 mode; KLSS digits
    // are 60-bit (Sec. 3.2) — formerly hard-coded in sim/lowering.
    return method == KeySwitchMethod::klss ? 60 : 36;
}

std::string
toString(const KeySwitchVariant &variant)
{
    std::string out = toString(variant.method);
    if (variant.dataflow != KeySwitchDataflow::standard)
        out += std::string("/") + toString(variant.dataflow);
    if (variant.bits != defaultMethodBits(variant.method))
        out += "@" + std::to_string(variant.bits);
    return out;
}

std::size_t
CkksParams::gadgetDigitsAtLevel(std::size_t ell) const
{
    double bits = modulusBitsAtLevel(ell);
    return static_cast<std::size_t>(
        std::ceil(bits / static_cast<double>(digit_bits)));
}

double
CkksParams::modulusBitsAtLevel(std::size_t ell) const
{
    double bits = 0;
    for (std::size_t i = 0; i <= ell && i < q_chain.size(); ++i)
        bits += std::log2(static_cast<double>(q_chain[i]));
    return bits;
}

void
CkksParams::validate() const
{
    if (degree == 0 || (degree & (degree - 1)) != 0)
        throw std::invalid_argument("degree must be a power of two");
    if (slots > degree / 2)
        throw std::invalid_argument("slots must be <= N/2");
    if (q_chain.empty())
        throw std::invalid_argument("empty modulus chain");
    if (alpha == 0)
        throw std::invalid_argument("alpha must be positive");
    if (digit_bits < 2 || digit_bits > 60)
        throw std::invalid_argument("digit_bits out of range");
    if (scale <= 1)
        throw std::invalid_argument("scale must exceed 1");
    // All moduli must be distinct across q, p, and t bases.
    std::vector<u64> all = q_chain;
    all.insert(all.end(), p_chain.begin(), p_chain.end());
    all.insert(all.end(), t_basis.begin(), t_basis.end());
    for (std::size_t i = 0; i < all.size(); ++i)
        for (std::size_t j = i + 1; j < all.size(); ++j)
            if (all[i] == all[j])
                throw std::invalid_argument("duplicate modulus");
    for (u64 q : all)
        if (q % (2 * degree) != 1)
            throw std::invalid_argument("modulus not NTT-friendly");
}

namespace {

/**
 * Assemble a parameter set, carving disjoint prime chains out of each
 * bit size with the skip mechanism.
 */
CkksParams
build(std::string name, std::size_t degree, std::size_t slots,
      std::size_t levels, int q_bits, std::size_t special_count,
      std::size_t alpha, int digit_bits, std::size_t t_count,
      double scale)
{
    CkksParams p;
    p.name = std::move(name);
    p.degree = degree;
    p.slots = slots;
    p.q_chain = math::generateNttPrimes(q_bits, degree, levels + 1);
    p.p_chain = math::generateNttPrimes(q_bits, degree, special_count,
                                        levels + 1);
    p.alpha = alpha;
    p.digit_bits = digit_bits;
    if (t_count > 0)
        p.t_basis = math::generateNttPrimes(60, degree, t_count);
    p.scale = scale;
    p.validate();
    return p;
}

} // namespace

CkksParams
CkksParams::paperSetI()
{
    // Table 2 Set-I: N=2^16, n=2^15, L=35, alpha=12, 36-bit moduli,
    // hybrid key-switching. 12 special primes (one full digit group).
    return build("Set-I", std::size_t(1) << 16, std::size_t(1) << 15,
                 35, 36, 12, 12, 60, 0, std::pow(2.0, 36));
}

CkksParams
CkksParams::paperSetII()
{
    // Table 2 Set-II: N=2^16, n=2^15, L=35, alpha=5, alpha~=9, 36-bit
    // moduli, hybrid + KLSS with v=60-bit digits. The 60-bit R_T basis
    // must cover 2*(alpha*36) + log2(N) + v bits ~ 437 -> 8 primes.
    return build("Set-II", std::size_t(1) << 16, std::size_t(1) << 15,
                 35, 36, 9, 5, 60, 8, std::pow(2.0, 36));
}

CkksParams
CkksParams::testSmall()
{
    // N=2^8: exhaustive property tests. 30-bit working primes with a
    // 45-bit q_0 for decryption headroom.
    CkksParams p;
    p.name = "Test-S";
    p.degree = 1 << 8;
    p.slots = 1 << 7;
    p.q_chain = math::generateNttPrimes(45, p.degree, 1);
    auto work = math::generateNttPrimes(30, p.degree, 4);
    p.q_chain.insert(p.q_chain.end(), work.begin(), work.end());
    p.p_chain = math::generateNttPrimes(36, p.degree, 3);
    p.alpha = 2;
    p.digit_bits = 16;
    p.t_basis = math::generateNttPrimes(60, p.degree, 3);
    p.scale = std::pow(2.0, 30);
    p.validate();
    return p;
}

CkksParams
CkksParams::testMedium()
{
    // N=2^12, L=8: integration-test scale.
    CkksParams p;
    p.name = "Test-M";
    p.degree = 1 << 12;
    p.slots = 1 << 11;
    p.q_chain = math::generateNttPrimes(50, p.degree, 1);
    auto work = math::generateNttPrimes(35, p.degree, 8);
    p.q_chain.insert(p.q_chain.end(), work.begin(), work.end());
    p.p_chain = math::generateNttPrimes(37, p.degree, 3);
    p.alpha = 2;
    p.digit_bits = 20;
    p.t_basis = math::generateNttPrimes(60, p.degree, 3);
    p.scale = std::pow(2.0, 35);
    p.validate();
    return p;
}

CkksParams
CkksParams::testMediumKlss()
{
    CkksParams p = testMedium();
    p.name = "Test-M-KLSS";
    // Wider digits: fewer gadget digits, more noise per digit — the
    // regime the 60-bit KLSS configuration occupies at paper scale.
    p.digit_bits = 30;
    return p;
}

CkksParams
CkksParams::testBoot()
{
    // Bootstrappable test set: sparse slots, deep chain. q_0 is large
    // relative to the scale so EvalMod's sine approximation holds
    // (|m| << q_0).
    CkksParams p;
    p.name = "Test-Boot";
    p.degree = 1 << 12;
    p.slots = 1 << 3;
    p.q_chain = math::generateNttPrimes(52, p.degree, 1);
    auto work = math::generateNttPrimes(45, p.degree, 14);
    p.q_chain.insert(p.q_chain.end(), work.begin(), work.end());
    p.p_chain = math::generateNttPrimes(50, p.degree, 3);
    p.alpha = 3;
    p.digit_bits = 25;
    p.t_basis = math::generateNttPrimes(60, p.degree, 3);
    p.scale = std::pow(2.0, 45);
    p.secret_hamming = 32;
    p.validate();
    return p;
}

} // namespace fast::ckks
