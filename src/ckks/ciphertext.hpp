/**
 * @file
 * CKKS plaintext and ciphertext containers.
 */
#ifndef FAST_CKKS_CIPHERTEXT_HPP
#define FAST_CKKS_CIPHERTEXT_HPP

#include "math/poly.hpp"

namespace fast::ckks {

using math::RnsPoly;

/**
 * An encoded (not encrypted) polynomial with its scale. Kept in eval
 * form so plaintext-ciphertext operations are element-wise.
 */
struct Plaintext {
    RnsPoly poly;
    double scale = 1.0;

    /** Remaining multiplicative level (limbs - 1). */
    std::size_t level() const { return poly.limbCount() - 1; }
};

/**
 * A CKKS ciphertext (c0, c1) under modulus Q_ell = q_0..q_ell
 * (Sec. 2.1.1): Dec(ct) = c0 + c1*s ~ Delta*m. Both polynomials are
 * held in eval form between operations, matching the accelerator's
 * on-chip layout.
 */
struct Ciphertext {
    RnsPoly c0;
    RnsPoly c1;
    double scale = 1.0;

    /** Remaining multiplicative level ell (limbs - 1). */
    std::size_t level() const { return c0.limbCount() - 1; }

    /** Number of RNS limbs per polynomial. */
    std::size_t limbCount() const { return c0.limbCount(); }

    /** Ring degree N. */
    std::size_t degree() const { return c0.degree(); }
};

} // namespace fast::ckks

#endif // FAST_CKKS_CIPHERTEXT_HPP
