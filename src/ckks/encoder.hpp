/**
 * @file
 * CKKS canonical-embedding encoder.
 *
 * Messages are vectors of complex numbers placed on the n = N/2 slots
 * of the canonical embedding (Sec. 2.1.1). Encoding scales by Delta,
 * evaluates an inverse complex negacyclic FFT to obtain real
 * coefficients, and rounds into RNS form; decoding is the forward
 * transform after CRT composition. The slot ordering follows the
 * rotation group (powers of 5), so a cyclic slot rotation by r equals
 * the Galois automorphism X -> X^{5^r} — the property HRot and the
 * AutoU unit depend on.
 */
#ifndef FAST_CKKS_ENCODER_HPP
#define FAST_CKKS_ENCODER_HPP

#include <complex>
#include <cstddef>
#include <vector>

#include "math/poly.hpp"

namespace fast::ckks {

using math::RnsPoly;
using math::u64;
using Complex = std::complex<double>;

/**
 * Encoder/decoder for one ring degree. Stateless apart from the
 * precomputed FFT tables and slot-index maps.
 */
class CkksEncoder
{
  public:
    /** Build tables for ring degree @p degree (power of two). */
    explicit CkksEncoder(std::size_t degree);

    std::size_t degree() const { return n_; }
    std::size_t slotCount() const { return n_ / 2; }

    /**
     * Encode @p values into a coefficient-form RNS polynomial.
     * Vectors shorter than N/2 slots are replicated to fill the ring
     * (standard sparse packing); the length must divide N/2.
     *
     * @param values  complex message, |values| divides N/2.
     * @param scale   Delta; coefficients are rounded(value * Delta).
     * @param moduli  target RNS basis.
     */
    RnsPoly encode(const std::vector<Complex> &values, double scale,
                   const std::vector<u64> &moduli) const;

    /**
     * Decode a coefficient-form polynomial back to @p slot_count slots
     * (averaging replicas when slot_count < N/2).
     */
    std::vector<Complex> decode(const RnsPoly &poly, double scale,
                                std::size_t slot_count) const;

    /**
     * The Galois element implementing a cyclic rotation of the slot
     * vector by @p steps (negative = rotate the other way).
     */
    u64 galoisForRotation(std::ptrdiff_t steps) const;

    /** The Galois element implementing complex conjugation (2N-1). */
    u64 galoisForConjugation() const { return 2 * n_ - 1; }

    /** Forward complex negacyclic transform (coeff -> slots order). */
    std::vector<Complex> embed(const std::vector<Complex> &coeffs) const;

    /** Inverse of embed. */
    std::vector<Complex> embedInverse(
        const std::vector<Complex> &slots) const;

  private:
    std::size_t n_;
    int log_n_;
    std::vector<Complex> roots_;      ///< psi powers, bit-rev order
    std::vector<std::size_t> slot_to_eval_;  ///< slot j -> eval index
    std::vector<std::size_t> slot_to_eval_conj_;

    void forwardFft(std::vector<Complex> &data) const;
    void inverseFft(std::vector<Complex> &data) const;
};

} // namespace fast::ckks

#endif // FAST_CKKS_ENCODER_HPP
