/**
 * @file
 * Rotation-key sets: rotate by arbitrary step counts using only a
 * logarithmic basis of keys.
 *
 * Applications need many distinct rotation amounts, but each key
 * costs tens of megabytes (Fig. 3b) — generating one per amount is
 * untenable. A RotationKeySet holds keys for the signed powers of
 * two and composes any rotation from at most log2(n) applications,
 * trading key storage for extra key switches — the same
 * storage/compute tradeoff Aether navigates on the accelerator.
 */
#ifndef FAST_CKKS_ROTATION_KEYS_HPP
#define FAST_CKKS_ROTATION_KEYS_HPP

#include <map>
#include <memory>

#include "ckks/evaluator.hpp"

namespace fast::ckks {

/**
 * A set of rotation keys with composition support.
 */
class RotationKeySet
{
  public:
    /**
     * Generate keys for every power of two below the slot count
     * (positive directions; negative amounts wrap around).
     */
    RotationKeySet(const KeyGenerator &keygen, KeySwitchMethod method,
                   std::size_t slot_count);

    /** Also pin a key for an exact amount (hot rotation amounts). */
    void addExact(const KeyGenerator &keygen, std::ptrdiff_t steps);

    /** Whether @p steps can be served with a single key switch. */
    bool hasExact(std::ptrdiff_t steps) const;

    /**
     * Rotate by any amount: one key switch when an exact key exists,
     * otherwise a composition over the power-of-two basis.
     */
    Ciphertext rotate(const CkksEvaluator &eval, const Ciphertext &ct,
                      std::ptrdiff_t steps) const;

    /** Number of key switches rotate() will perform for @p steps. */
    std::size_t switchesFor(std::ptrdiff_t steps) const;

    /** Total stored key bytes (b halves, EKG-compressed). */
    std::size_t storedBytes() const;

    std::size_t keyCount() const { return keys_.size(); }
    KeySwitchMethod method() const { return method_; }

  private:
    std::size_t normalize(std::ptrdiff_t steps) const;

    KeySwitchMethod method_;
    std::size_t slots_;
    std::map<std::size_t, EvalKey> keys_;  ///< by normalized amount
};

} // namespace fast::ckks

#endif // FAST_CKKS_ROTATION_KEYS_HPP
