/**
 * @file
 * Implementation of the CKKS evaluator.
 */
#include "ckks/evaluator.hpp"

#include <cmath>
#include <stdexcept>

#include "math/parallel.hpp"

namespace fast::ckks {

namespace {

/** Scales must agree to within floating-point bookkeeping noise. */
void
requireSameScale(double a, double b)
{
    if (std::abs(a - b) > 1e-6 * std::max(a, b))
        throw std::invalid_argument("ciphertext scales do not match");
}

} // namespace

CkksEvaluator::CkksEvaluator(std::shared_ptr<const CkksContext> ctx)
    : ctx_(ctx), switcher_(ctx)
{
}

Plaintext
CkksEvaluator::encode(const std::vector<Complex> &values, double scale,
                      std::size_t level) const
{
    Plaintext pt;
    pt.poly = ctx_->encoder().encode(values, scale,
                                     ctx_->qModuli(level));
    pt.poly.toEval();
    pt.scale = scale;
    return pt;
}

Plaintext
CkksEvaluator::encodeConstant(double value, double scale,
                              std::size_t level) const
{
    return encode({Complex(value, 0)}, scale, level);
}

Ciphertext
CkksEvaluator::encrypt(const Plaintext &pt, const PublicKey &pk,
                       math::Prng &prng) const
{
    std::size_t level = pt.level();
    std::size_t limbs = level + 1;
    std::size_t n = ctx_->degree();
    auto moduli = ctx_->qModuli(level);

    RnsPoly u(n, moduli, math::PolyForm::coeff);
    u.fillTernary(prng);
    u.toEval();
    RnsPoly e0(n, moduli, math::PolyForm::coeff);
    e0.fillGaussian(prng, ctx_->params().noise_sigma);
    e0.toEval();
    RnsPoly e1(n, moduli, math::PolyForm::coeff);
    e1.fillGaussian(prng, ctx_->params().noise_sigma);
    e1.toEval();

    RnsPoly pk_b = pk.b;
    pk_b.keepLimbs(limbs);
    RnsPoly pk_a = pk.a;
    pk_a.keepLimbs(limbs);

    Ciphertext ct;
    ct.c0 = pk_b.hadamard(u);
    ct.c0 += e0;
    RnsPoly msg = pt.poly;
    if (!msg.isEval())
        msg.toEval();
    ct.c0 += msg;
    ct.c1 = pk_a.hadamard(u);
    ct.c1 += e1;
    ct.scale = pt.scale;
    return ct;
}

Ciphertext
CkksEvaluator::encryptSymmetric(const Plaintext &pt, const SecretKey &sk,
                                math::Prng &prng) const
{
    std::size_t level = pt.level();
    std::size_t n = ctx_->degree();
    auto moduli = ctx_->qModuli(level);

    RnsPoly a(n, moduli, math::PolyForm::eval);
    a.fillUniform(prng);
    RnsPoly e(n, moduli, math::PolyForm::coeff);
    e.fillGaussian(prng, ctx_->params().noise_sigma);
    e.toEval();

    RnsPoly s = sk.s;
    s.keepLimbs(level + 1);

    Ciphertext ct;
    ct.c1 = a;
    ct.c0 = a.hadamard(s);
    ct.c0.negateInPlace();
    ct.c0 += e;
    RnsPoly msg = pt.poly;
    if (!msg.isEval())
        msg.toEval();
    ct.c0 += msg;
    ct.scale = pt.scale;
    return ct;
}

Plaintext
CkksEvaluator::decrypt(const Ciphertext &ct, const SecretKey &sk) const
{
    RnsPoly s = sk.s;
    s.keepLimbs(ct.limbCount());
    Plaintext pt;
    pt.poly = ct.c1.hadamard(s);
    pt.poly += ct.c0;
    pt.poly.toCoeff();
    pt.scale = ct.scale;
    return pt;
}

std::vector<Complex>
CkksEvaluator::decryptDecode(const Ciphertext &ct, const SecretKey &sk,
                             std::size_t slot_count) const
{
    Plaintext pt = decrypt(ct, sk);
    return ctx_->encoder().decode(pt.poly, pt.scale, slot_count);
}

void
CkksEvaluator::requireSameShape(const Ciphertext &a,
                                const Ciphertext &b) const
{
    if (a.limbCount() != b.limbCount())
        throw std::invalid_argument("ciphertext levels do not match");
    requireSameScale(a.scale, b.scale);
}

Ciphertext
CkksEvaluator::add(const Ciphertext &a, const Ciphertext &b) const
{
    requireSameShape(a, b);
    Ciphertext out = a;
    out.c0 += b.c0;
    out.c1 += b.c1;
    return out;
}

Ciphertext
CkksEvaluator::sub(const Ciphertext &a, const Ciphertext &b) const
{
    requireSameShape(a, b);
    Ciphertext out = a;
    out.c0 -= b.c0;
    out.c1 -= b.c1;
    return out;
}

Ciphertext
CkksEvaluator::negate(const Ciphertext &a) const
{
    Ciphertext out = a;
    out.c0.negateInPlace();
    out.c1.negateInPlace();
    return out;
}

Ciphertext
CkksEvaluator::addPlain(const Ciphertext &a, const Plaintext &p) const
{
    if (p.poly.limbCount() != a.limbCount())
        throw std::invalid_argument("plaintext level mismatch");
    requireSameScale(a.scale, p.scale);
    Ciphertext out = a;
    out.c0 += p.poly;
    return out;
}

Ciphertext
CkksEvaluator::subPlain(const Ciphertext &a, const Plaintext &p) const
{
    if (p.poly.limbCount() != a.limbCount())
        throw std::invalid_argument("plaintext level mismatch");
    requireSameScale(a.scale, p.scale);
    Ciphertext out = a;
    out.c0 -= p.poly;
    return out;
}

Ciphertext
CkksEvaluator::multiplyPlain(const Ciphertext &a, const Plaintext &p) const
{
    if (p.poly.limbCount() != a.limbCount())
        throw std::invalid_argument("plaintext level mismatch");
    Ciphertext out = a;
    out.c0.hadamardInPlace(p.poly);
    out.c1.hadamardInPlace(p.poly);
    out.scale = a.scale * p.scale;
    return out;
}

Ciphertext
CkksEvaluator::multiplyConstant(const Ciphertext &a, double value) const
{
    double scale = ctx_->params().scale;
    auto v = static_cast<math::i64>(std::llround(value * scale));
    Ciphertext out = a;
    std::vector<u64> scalars(a.limbCount());
    for (std::size_t i = 0; i < scalars.size(); ++i)
        scalars[i] = math::fromCentered(v, a.c0.modulus(i));
    out.c0.scalePerLimb(scalars);
    out.c1.scalePerLimb(scalars);
    out.scale = a.scale * scale;
    return out;
}

Ciphertext
CkksEvaluator::multiplyByMonomial(const Ciphertext &a,
                                  std::size_t power) const
{
    RnsPoly mono(ctx_->degree(), a.c0.moduli(), math::PolyForm::coeff);
    std::size_t n = ctx_->degree();
    std::size_t p = power % (2 * n);
    // X^{N + k} = -X^k in the negacyclic ring.
    mono.setCoefficient(p % n, p < n ? 1 : -1);
    mono.toEval();
    Ciphertext out = a;
    out.c0.hadamardInPlace(mono);
    out.c1.hadamardInPlace(mono);
    return out;
}

Ciphertext
CkksEvaluator::multiply(const Ciphertext &a, const Ciphertext &b,
                        const EvalKey &relin_key) const
{
    if (a.limbCount() != b.limbCount())
        throw std::invalid_argument("ciphertext levels do not match");
    // Tensor product: (d0, d1, d2) = (a0*b0, a0*b1 + a1*b0, a1*b1).
    RnsPoly d0 = a.c0.hadamard(b.c0);
    RnsPoly d1 = a.c0.hadamard(b.c1);
    d1 += a.c1.hadamard(b.c0);
    RnsPoly d2 = a.c1.hadamard(b.c1);

    // Relinearize the s^2 component.
    KeySwitchDelta delta = switcher_.apply(d2, relin_key);
    Ciphertext out;
    out.c0 = std::move(d0);
    out.c0 += delta.d0;
    out.c1 = std::move(d1);
    out.c1 += delta.d1;
    out.scale = a.scale * b.scale;
    return out;
}

Ciphertext
CkksEvaluator::square(const Ciphertext &a, const EvalKey &relin_key) const
{
    return multiply(a, a, relin_key);
}

void
CkksEvaluator::rescaleInPlace(Ciphertext &ct) const
{
    if (ct.limbCount() < 2)
        throw std::logic_error("cannot rescale at the last level");
    std::size_t n = ct.degree();
    std::size_t last = ct.limbCount() - 1;
    u64 q_last = ct.c0.modulus(last);

    const auto &ntt = ctx_->nttTables();
    auto &eng = math::KernelEngine::global();
    for (RnsPoly *poly : {&ct.c0, &ct.c1}) {
        // Last limb to coefficient form for centered lifting.
        math::AlignedU64 tail = poly->limb(last);
        ntt.forModulus(q_last).inverseParallel(tail.data(), eng);
        // Every target limb's lift/NTT/fuse is independent; run the
        // whole per-limb pipeline as one engine task per limb.
        eng.parallelFor(last, [&](std::size_t i0, std::size_t i1) {
            std::vector<u64> lifted(n);
            for (std::size_t i = i0; i < i1; ++i) {
                u64 q = poly->modulus(i);
                u64 inv = math::invMod(q_last % q, q);
                u64 inv_shoup = math::shoupPrecompute(inv, q);
                // Centered lift of the tail into q_i, then NTT.
                for (std::size_t c = 0; c < n; ++c)
                    lifted[c] = math::fromCentered(
                        math::toCentered(tail[c], q_last), q);
                ntt.forModulus(q).forward(lifted.data());
                auto &limb = poly->limb(i);
                for (std::size_t c = 0; c < n; ++c) {
                    u64 diff = math::subMod(limb[c], lifted[c], q);
                    limb[c] =
                        math::mulModShoup(diff, inv, inv_shoup, q);
                }
            }
        });
        poly->dropLastLimbs(1);
    }
    ct.scale /= static_cast<double>(q_last);
}

void
CkksEvaluator::rescaleDoubleInPlace(Ciphertext &ct) const
{
    if (ct.limbCount() < 3)
        throw std::logic_error("double rescale needs two spare limbs");
    std::size_t n = ct.degree();
    std::size_t last = ct.limbCount() - 1;
    u64 q1 = ct.c0.modulus(last - 1);
    u64 q2 = ct.c0.modulus(last);
    // CRT pair constants: x = r1 + q1 * ([r2 - r1]_{q2} * q1^{-1} mod q2).
    u64 q1_inv_q2 = math::invMod(q1 % q2, q2);
    math::u128 q1q2 = (math::u128)q1 * q2;
    math::u128 half = q1q2 >> 1;

    const auto &ntt = ctx_->nttTables();
    auto &eng = math::KernelEngine::global();
    for (RnsPoly *poly : {&ct.c0, &ct.c1}) {
        math::AlignedU64 tail1 = poly->limb(last - 1);
        math::AlignedU64 tail2 = poly->limb(last);
        ntt.forModulus(q1).inverseParallel(tail1.data(), eng);
        ntt.forModulus(q2).inverseParallel(tail2.data(), eng);
        std::size_t targets = poly->limbCount() - 2;
        eng.parallelFor(targets, [&](std::size_t i0, std::size_t i1) {
            std::vector<u64> lifted(n);
            for (std::size_t i = i0; i < i1; ++i) {
                u64 q = poly->modulus(i);
                u64 inv = math::invMod(
                    math::mulMod(q1 % q, q2 % q, q), q);
                u64 inv_shoup = math::shoupPrecompute(inv, q);
                for (std::size_t c = 0; c < n; ++c) {
                    // Compose the pair, center against q1*q2, reduce.
                    u64 t = math::mulMod(
                        math::subMod(tail2[c] % q2, tail1[c] % q2, q2),
                        q1_inv_q2, q2);
                    math::u128 v = (math::u128)tail1[c] +
                                   (math::u128)q1 * t;
                    if (v > half) {
                        math::u128 neg = q1q2 - v;
                        lifted[c] = math::negMod(
                            static_cast<u64>(neg % q), q);
                    } else {
                        lifted[c] = static_cast<u64>(v % q);
                    }
                }
                ntt.forModulus(q).forward(lifted.data());
                auto &limb = poly->limb(i);
                for (std::size_t c = 0; c < n; ++c) {
                    u64 diff = math::subMod(limb[c], lifted[c], q);
                    limb[c] =
                        math::mulModShoup(diff, inv, inv_shoup, q);
                }
            }
        });
        poly->dropLastLimbs(2);
    }
    ct.scale /= static_cast<double>(q1);
    ct.scale /= static_cast<double>(q2);
}

void
CkksEvaluator::dropToLevelInPlace(Ciphertext &ct, std::size_t level) const
{
    if (level + 1 > ct.limbCount())
        throw std::invalid_argument("cannot raise level by dropping");
    ct.c0.keepLimbs(level + 1);
    ct.c1.keepLimbs(level + 1);
}

Ciphertext
CkksEvaluator::rotate(const Ciphertext &ct, std::ptrdiff_t steps,
                      const EvalKey &key) const
{
    u64 g = ctx_->encoder().galoisForRotation(steps);
    return applyGalois(ct, g, key);
}

Ciphertext
CkksEvaluator::conjugate(const Ciphertext &ct, const EvalKey &key) const
{
    return applyGalois(ct, ctx_->encoder().galoisForConjugation(), key);
}

Ciphertext
CkksEvaluator::applyGalois(const Ciphertext &ct, u64 galois_elt,
                           const EvalKey &key) const
{
    if (key.galois != galois_elt)
        throw std::invalid_argument("wrong galois key for this rotation");
    RnsPoly rot_c1 = ct.c1.automorphism(galois_elt);
    KeySwitchDelta delta = switcher_.apply(rot_c1, key);
    Ciphertext out;
    out.c0 = ct.c0.automorphism(galois_elt);
    out.c0 += delta.d0;
    out.c1 = std::move(delta.d1);
    out.scale = ct.scale;
    return out;
}

HoistedRotator::HoistedRotator(const CkksEvaluator &evaluator,
                               const Ciphertext &ct,
                               KeySwitchMethod method)
    : evaluator_(evaluator), base_(ct), method_(method),
      digits_(evaluator.switcher().decompose(ct.c1, method))
{
}

Ciphertext
HoistedRotator::rotate(std::ptrdiff_t steps, const EvalKey &key) const
{
    if (key.method != method_)
        throw std::invalid_argument("key method mismatch in hoisting");
    u64 g = evaluator_.context().encoder().galoisForRotation(steps);
    if (key.galois != g)
        throw std::invalid_argument("wrong galois key for this rotation");

    // Automorphism commutes with decomposition: rotate the digits.
    std::vector<RnsPoly> rotated;
    rotated.reserve(digits_.size());
    for (const auto &d : digits_)
        rotated.push_back(d.automorphism(g));

    KeySwitchDelta delta =
        evaluator_.switcher().keyMultModDown(rotated, key);
    Ciphertext out;
    out.c0 = base_.c0.automorphism(g);
    out.c0 += delta.d0;
    out.c1 = std::move(delta.d1);
    out.scale = base_.scale;
    return out;
}

} // namespace fast::ckks
