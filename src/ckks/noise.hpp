/**
 * @file
 * Noise diagnostics: measure the actual error of a ciphertext against
 * a known reference (requires the secret key) and track the remaining
 * noise budget. The paper's precision discussion (Sec. 2.1.1: error
 * growth limits operations before bootstrapping) in tool form.
 */
#ifndef FAST_CKKS_NOISE_HPP
#define FAST_CKKS_NOISE_HPP

#include "ckks/evaluator.hpp"

namespace fast::ckks {

/** A decrypted-and-compared precision measurement. */
struct NoiseReport {
    double max_abs_error = 0;   ///< max |decoded - expected|
    double mean_abs_error = 0;
    double precision_bits = 0;  ///< -log2(max error)
    std::size_t level = 0;      ///< remaining multiplicative level
    double log2_scale = 0;
};

/**
 * Noise inspector. Holds the secret key, so this is a debugging /
 * validation facility — never ship it to the evaluating party.
 */
class NoiseInspector
{
  public:
    NoiseInspector(const CkksEvaluator &eval, const SecretKey &sk)
        : eval_(eval), sk_(sk)
    {
    }

    /** Compare a ciphertext's slots against expected values. */
    NoiseReport measure(const Ciphertext &ct,
                        const std::vector<Complex> &expected) const;

    /**
     * Bits of modulus headroom left: log2(Q_ell) - log2(scale). When
     * this approaches log2(q_0) the ciphertext must bootstrap.
     */
    double budgetBits(const Ciphertext &ct) const;

    /** True when no rescale levels remain (bootstrap required). */
    bool exhausted(const Ciphertext &ct) const
    {
        return ct.level() == 0;
    }

  private:
    const CkksEvaluator &eval_;
    const SecretKey &sk_;
};

} // namespace fast::ckks

#endif // FAST_CKKS_NOISE_HPP
