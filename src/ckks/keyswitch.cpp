/**
 * @file
 * Implementation of hybrid and gadget key-switching.
 *
 * The hot loops (ModUp INTT/BConv/NTT, gadget digit split, ModDown)
 * run on the KernelEngine in limb x block form, mirroring how the
 * FAST clusters drive the NTTU/BConvU/KMU in parallel (Sec. 5). NTT
 * tables come from the context's pre-built NttTableSet — one O(log k)
 * lookup per limb before dispatch, never inside the inner loops — and
 * base conversion uses the batched BaseConverter::convertPoly kernel
 * (no per-coefficient allocation). Every partition is static, so the
 * results are bit-identical to the serial path for any thread count.
 */
#include "ckks/keyswitch.hpp"

#include <stdexcept>

#include "math/bignum.hpp"
#include "math/parallel.hpp"
#include "math/rns.hpp"
#include "obs/trace.hpp"

namespace fast::ckks {

namespace {

/**
 * Transform a batch of limbs (forward when @p fwd) with pre-fetched
 * tables: whole-limb parallelism when the batch covers the pool,
 * intra-transform block parallelism otherwise.
 */
void
nttBatch(const std::vector<math::AlignedU64 *> &limbs,
         const std::vector<const math::NttTables *> &tables, bool fwd,
         math::KernelEngine &eng)
{
    if (limbs.size() >= eng.threadCount()) {
        eng.parallelFor(limbs.size(), [&](std::size_t b,
                                          std::size_t e) {
            for (std::size_t i = b; i < e; ++i) {
                if (fwd)
                    tables[i]->forward(limbs[i]->data());
                else
                    tables[i]->inverse(limbs[i]->data());
            }
        });
    } else {
        for (std::size_t i = 0; i < limbs.size(); ++i) {
            if (fwd)
                tables[i]->forwardParallel(limbs[i]->data(), eng);
            else
                tables[i]->inverseParallel(limbs[i]->data(), eng);
        }
    }
}

/** Minimum coefficients per block for fused element-wise loops. */
constexpr std::size_t kMinFuseBlock = 2048;

} // namespace

KeySwitcher::KeySwitcher(std::shared_ptr<const CkksContext> ctx)
    : ctx_(std::move(ctx))
{
}

std::vector<RnsPoly>
KeySwitcher::decompose(const RnsPoly &input, KeySwitchMethod method) const
{
    if (!input.isEval())
        throw std::logic_error("decompose expects eval form");
    return method == KeySwitchMethod::hybrid ? modUpHybrid(input)
                                             : decomposeGadget(input);
}

std::vector<RnsPoly>
KeySwitcher::modUpHybrid(const RnsPoly &input) const
{
    const auto &params = ctx_->params();
    const auto &ntt = ctx_->nttTables();
    auto &eng = math::KernelEngine::global();
    std::size_t n = input.degree();
    std::size_t limbs = input.limbCount();
    std::size_t ell = limbs - 1;
    std::size_t beta = params.betaAtLevel(ell);
    auto ext_moduli = ctx_->extendedModuli(ell);
    FAST_OBS_COUNT("ks.modup", 1);
    FAST_OBS_SPAN_VAR(span, "ks.modup");
    FAST_OBS_SPAN_ARG(span, "limbs", static_cast<std::uint64_t>(limbs));
    FAST_OBS_SPAN_ARG(span, "beta", static_cast<std::uint64_t>(beta));

    std::vector<RnsPoly> digits;
    digits.reserve(beta);
    for (std::size_t j = 0; j < beta; ++j) {
        std::size_t first = j * params.alpha;
        std::size_t count = std::min(params.alpha, limbs - first);

        // Group limbs back to coefficient form (the INTT step),
        // parallel across the group.
        std::vector<u64> group_mods(count);
        std::vector<math::AlignedU64> group_coeff(count);
        std::vector<math::AlignedU64 *> group_ptrs(count);
        std::vector<const math::NttTables *> group_tables(count);
        for (std::size_t i = 0; i < count; ++i) {
            group_mods[i] = input.modulus(first + i);
            group_coeff[i] = input.limb(first + i);
            group_ptrs[i] = &group_coeff[i];
            group_tables[i] = &ntt.forModulus(group_mods[i]);
        }
        nttBatch(group_ptrs, group_tables, false, eng);

        // Complement basis: every extended modulus not in the group.
        std::vector<u64> comp_mods;
        std::vector<std::size_t> comp_index;
        for (std::size_t mi = 0; mi < ext_moduli.size(); ++mi) {
            if (mi >= first && mi < first + count)
                continue;
            comp_mods.push_back(ext_moduli[mi]);
            comp_index.push_back(mi);
        }

        const auto &conv = ctx_->converter(group_mods, comp_mods);

        RnsPoly digit(n, ext_moduli, math::PolyForm::eval);
        // Own limbs: already in eval form, pass through unchanged.
        for (std::size_t i = 0; i < count; ++i)
            digit.limb(first + i) = input.limb(first + i);

        // Converted limbs: batched BConv straight into the digit's
        // limb storage, then forward NTT.
        std::vector<const u64 *> conv_in(count);
        for (std::size_t i = 0; i < count; ++i)
            conv_in[i] = group_coeff[i].data();
        std::vector<u64 *> conv_out(comp_mods.size());
        std::vector<math::AlignedU64 *> out_ptrs(comp_mods.size());
        std::vector<const math::NttTables *> out_tables(
            comp_mods.size());
        for (std::size_t t = 0; t < comp_mods.size(); ++t) {
            auto &limb = digit.limb(comp_index[t]);
            conv_out[t] = limb.data();
            out_ptrs[t] = &limb;
            out_tables[t] = &ntt.forModulus(comp_mods[t]);
        }
        conv.convertPoly(conv_in, n, conv_out, eng);
        nttBatch(out_ptrs, out_tables, true, eng);
        digits.push_back(std::move(digit));
    }
    return digits;
}

std::vector<RnsPoly>
KeySwitcher::decomposeGadget(const RnsPoly &input) const
{
    const auto &params = ctx_->params();
    auto &eng = math::KernelEngine::global();
    std::size_t n = input.degree();
    std::size_t ell = input.limbCount() - 1;
    std::size_t digit_count = params.gadgetDigitsAtLevel(ell);
    int v = params.digit_bits;
    auto ext_moduli = ctx_->extendedModuli(ell);
    FAST_OBS_COUNT("ks.gadget_decompose", 1);
    FAST_OBS_SPAN_VAR(span, "ks.gadget_decompose");
    FAST_OBS_SPAN_ARG(span, "digits",
                      static_cast<std::uint64_t>(digit_count));
    FAST_OBS_SPAN_ARG(span, "digit_bits",
                      static_cast<std::uint64_t>(v));

    // Back to coefficient form for the integer digit split.
    RnsPoly coeff_poly = input;
    coeff_poly.toCoeff();
    const auto &q_basis = ctx_->basis(coeff_poly.moduli());

    std::vector<RnsPoly> digits(
        digit_count,
        RnsPoly(n, ext_moduli, math::PolyForm::coeff));

    // Each coefficient's CRT compose + digit split is independent;
    // blocks write disjoint columns of every digit poly.
    std::size_t limbs = coeff_poly.limbCount();
    eng.parallelFor(n, [&](std::size_t c0, std::size_t c1) {
        std::vector<u64> residues(limbs);
        for (std::size_t c = c0; c < c1; ++c) {
            for (std::size_t i = 0; i < limbs; ++i)
                residues[i] = coeff_poly.limb(i)[c];
            math::BigUInt x = q_basis.compose(residues);
            // x = sum_t digit_t * 2^{v t}, digits in [0, 2^v).
            for (std::size_t t = 0; t < digit_count; ++t) {
                math::BigUInt low =
                    x.lowBits(static_cast<std::size_t>(v));
                u64 d = low.word(0);
                x = x >> static_cast<std::size_t>(v);
                if (d == 0)
                    continue;
                auto &digit = digits[t];
                for (std::size_t mi = 0; mi < ext_moduli.size(); ++mi)
                    digit.limb(mi)[c] = d % ext_moduli[mi];
            }
        }
    });
    for (auto &digit : digits)
        digit.toEval();
    return digits;
}

RnsPoly
KeySwitcher::restrictKeyPoly(const RnsPoly &key_poly,
                             std::size_t q_limbs) const
{
    const auto &params = ctx_->params();
    std::size_t total_q = params.q_chain.size();
    std::size_t specials = params.p_chain.size();
    auto ext_moduli = ctx_->extendedModuli(q_limbs - 1);

    RnsPoly out(key_poly.degree(), ext_moduli, math::PolyForm::eval);
    for (std::size_t i = 0; i < q_limbs; ++i)
        out.limb(i) = key_poly.limb(i);
    for (std::size_t i = 0; i < specials; ++i)
        out.limb(q_limbs + i) = key_poly.limb(total_q + i);
    return out;
}

KeySwitchDelta
KeySwitcher::keyMultModDown(const std::vector<RnsPoly> &digits,
                            const EvalKey &key) const
{
    if (digits.empty())
        throw std::invalid_argument("no digits to key-switch");
    if (digits.size() > key.parts.size())
        throw std::invalid_argument("digit count exceeds key parts");

    std::size_t specials = ctx_->params().p_chain.size();
    std::size_t q_limbs = digits[0].limbCount() - specials;
    auto ext_moduli = digits[0].moduli();
    FAST_OBS_COUNT("ks.keymult", 1);
    FAST_OBS_SPAN_VAR(span, "ks.keymult");
    FAST_OBS_SPAN_ARG(span, "digits",
                      static_cast<std::uint64_t>(digits.size()));
    FAST_OBS_SPAN_ARG(span, "q_limbs",
                      static_cast<std::uint64_t>(q_limbs));

    RnsPoly acc0(digits[0].degree(), ext_moduli, math::PolyForm::eval);
    RnsPoly acc1 = acc0;
    for (std::size_t j = 0; j < digits.size(); ++j) {
        RnsPoly b = restrictKeyPoly(key.parts[j].b, q_limbs);
        RnsPoly a = restrictKeyPoly(key.parts[j].a, q_limbs);
        b.hadamardInPlace(digits[j]);
        a.hadamardInPlace(digits[j]);
        acc0 += b;
        acc1 += a;
    }
    return {modDown(acc0), modDown(acc1)};
}

RnsPoly
KeySwitcher::modDown(const RnsPoly &extended) const
{
    const auto &params = ctx_->params();
    const auto &ntt = ctx_->nttTables();
    auto &eng = math::KernelEngine::global();
    std::size_t specials = params.p_chain.size();
    std::size_t q_limbs = extended.limbCount() - specials;
    std::size_t n = extended.degree();
    FAST_OBS_COUNT("ks.moddown", 1);
    FAST_OBS_SPAN_VAR(span, "ks.moddown");
    FAST_OBS_SPAN_ARG(span, "q_limbs",
                      static_cast<std::uint64_t>(q_limbs));
    FAST_OBS_SPAN_ARG(span, "specials",
                      static_cast<std::uint64_t>(specials));

    // Special limbs to coefficient form.
    std::vector<math::AlignedU64> p_coeff(specials);
    std::vector<math::AlignedU64 *> p_ptrs(specials);
    std::vector<const math::NttTables *> p_tables(specials);
    for (std::size_t i = 0; i < specials; ++i) {
        p_coeff[i] = extended.limb(q_limbs + i);
        p_ptrs[i] = &p_coeff[i];
        p_tables[i] = &ntt.forModulus(params.p_chain[i]);
    }
    nttBatch(p_ptrs, p_tables, false, eng);

    // Batched BConv specials -> q basis.
    std::vector<u64> q_mods(extended.moduli().begin(),
                            extended.moduli().begin() +
                                static_cast<std::ptrdiff_t>(q_limbs));
    const auto &conv = ctx_->converter(params.p_chain, q_mods);
    std::vector<math::AlignedU64> converted(q_limbs,
                                            math::AlignedU64(n));
    std::vector<const u64 *> conv_in(specials);
    for (std::size_t i = 0; i < specials; ++i)
        conv_in[i] = p_coeff[i].data();
    std::vector<u64 *> conv_out(q_limbs);
    std::vector<math::AlignedU64 *> q_ptrs(q_limbs);
    std::vector<const math::NttTables *> q_tables(q_limbs);
    for (std::size_t i = 0; i < q_limbs; ++i) {
        conv_out[i] = converted[i].data();
        q_ptrs[i] = &converted[i];
        q_tables[i] = &ntt.forModulus(q_mods[i]);
    }
    conv.convertPoly(conv_in, n, conv_out, eng);
    nttBatch(q_ptrs, q_tables, true, eng);

    // result_i = (x_i - conv_i) * P^{-1} mod q_i — fused subtract +
    // scale with the per-limb constants hoisted out of the grid.
    RnsPoly result(n, q_mods, math::PolyForm::eval);
    std::vector<u64> p_inv(q_limbs), p_inv_shoup(q_limbs);
    for (std::size_t i = 0; i < q_limbs; ++i) {
        u64 q = q_mods[i];
        p_inv[i] = math::invMod(ctx_->specialProductMod(q), q);
        p_inv_shoup[i] = math::shoupPrecompute(p_inv[i], q);
    }
    std::size_t blocks = math::KernelEngine::blocksFor(
        n, eng.threadCount(), kMinFuseBlock);
    eng.parallelFor2D(q_limbs, blocks, [&](std::size_t i,
                                           std::size_t b) {
        u64 q = q_mods[i];
        const auto &src = extended.limb(i);
        const auto &cv = converted[i];
        auto &dst = result.limb(i);
        std::size_t c1 = n * (b + 1) / blocks;
        for (std::size_t c = n * b / blocks; c < c1; ++c) {
            u64 diff = math::subMod(src[c], cv[c], q);
            dst[c] = math::mulModShoup(diff, p_inv[i], p_inv_shoup[i],
                                       q);
        }
    });
    return result;
}

KeySwitchDelta
KeySwitcher::apply(const RnsPoly &input, const EvalKey &key) const
{
    return keyMultModDown(decompose(input, key.method), key);
}

} // namespace fast::ckks
