/**
 * @file
 * Implementation of hybrid and gadget key-switching.
 */
#include "ckks/keyswitch.hpp"

#include <stdexcept>

#include "math/bignum.hpp"
#include "math/rns.hpp"

namespace fast::ckks {

KeySwitcher::KeySwitcher(std::shared_ptr<const CkksContext> ctx)
    : ctx_(std::move(ctx))
{
}

std::vector<RnsPoly>
KeySwitcher::decompose(const RnsPoly &input, KeySwitchMethod method) const
{
    if (!input.isEval())
        throw std::logic_error("decompose expects eval form");
    return method == KeySwitchMethod::hybrid ? modUpHybrid(input)
                                             : decomposeGadget(input);
}

std::vector<RnsPoly>
KeySwitcher::modUpHybrid(const RnsPoly &input) const
{
    const auto &params = ctx_->params();
    std::size_t n = input.degree();
    std::size_t limbs = input.limbCount();
    std::size_t ell = limbs - 1;
    std::size_t beta = params.betaAtLevel(ell);
    auto ext_moduli = ctx_->extendedModuli(ell);

    std::vector<RnsPoly> digits;
    digits.reserve(beta);
    for (std::size_t j = 0; j < beta; ++j) {
        std::size_t first = j * params.alpha;
        std::size_t count = std::min(params.alpha, limbs - first);

        // Group limbs back to coefficient form (the INTT step).
        std::vector<u64> group_mods(count);
        std::vector<std::vector<u64>> group_coeff(count);
        for (std::size_t i = 0; i < count; ++i) {
            group_mods[i] = input.modulus(first + i);
            group_coeff[i] = input.limb(first + i);
            math::NttTableCache::get(n, group_mods[i])
                ->inverse(group_coeff[i]);
        }

        // Complement basis: every extended modulus not in the group.
        std::vector<u64> comp_mods;
        std::vector<std::size_t> comp_index;
        for (std::size_t mi = 0; mi < ext_moduli.size(); ++mi) {
            if (mi >= first && mi < first + count)
                continue;
            comp_mods.push_back(ext_moduli[mi]);
            comp_index.push_back(mi);
        }

        const auto &conv = ctx_->converter(group_mods, comp_mods);

        RnsPoly digit(n, ext_moduli, math::PolyForm::eval);
        // Own limbs: already in eval form, pass through unchanged.
        for (std::size_t i = 0; i < count; ++i)
            digit.limb(first + i) = input.limb(first + i);

        // Converted limbs: BConv coefficient-wise, then NTT.
        std::vector<std::vector<u64>> converted(
            comp_mods.size(), std::vector<u64>(n));
        std::vector<u64> residues(count), out;
        for (std::size_t c = 0; c < n; ++c) {
            for (std::size_t i = 0; i < count; ++i)
                residues[i] = group_coeff[i][c];
            out = conv.convert(residues);
            for (std::size_t t = 0; t < comp_mods.size(); ++t)
                converted[t][c] = out[t];
        }
        for (std::size_t t = 0; t < comp_mods.size(); ++t) {
            math::NttTableCache::get(n, comp_mods[t])
                ->forward(converted[t]);
            digit.limb(comp_index[t]) = std::move(converted[t]);
        }
        digits.push_back(std::move(digit));
    }
    return digits;
}

std::vector<RnsPoly>
KeySwitcher::decomposeGadget(const RnsPoly &input) const
{
    const auto &params = ctx_->params();
    std::size_t n = input.degree();
    std::size_t ell = input.limbCount() - 1;
    std::size_t digit_count = params.gadgetDigitsAtLevel(ell);
    int v = params.digit_bits;
    auto ext_moduli = ctx_->extendedModuli(ell);

    // Back to coefficient form for the integer digit split.
    RnsPoly coeff_poly = input;
    coeff_poly.toCoeff();
    const auto &q_basis = ctx_->basis(coeff_poly.moduli());

    std::vector<RnsPoly> digits(
        digit_count,
        RnsPoly(n, ext_moduli, math::PolyForm::coeff));

    std::vector<u64> residues(coeff_poly.limbCount());
    for (std::size_t c = 0; c < n; ++c) {
        for (std::size_t i = 0; i < residues.size(); ++i)
            residues[i] = coeff_poly.limb(i)[c];
        math::BigUInt x = q_basis.compose(residues);
        // x = sum_t digit_t * 2^{v t}, digits in [0, 2^v).
        for (std::size_t t = 0; t < digit_count; ++t) {
            math::BigUInt low = x.lowBits(static_cast<std::size_t>(v));
            u64 d = low.word(0);
            x = x >> static_cast<std::size_t>(v);
            if (d == 0)
                continue;
            auto &digit = digits[t];
            for (std::size_t mi = 0; mi < ext_moduli.size(); ++mi)
                digit.limb(mi)[c] = d % ext_moduli[mi];
        }
    }
    for (auto &digit : digits)
        digit.toEval();
    return digits;
}

RnsPoly
KeySwitcher::restrictKeyPoly(const RnsPoly &key_poly,
                             std::size_t q_limbs) const
{
    const auto &params = ctx_->params();
    std::size_t total_q = params.q_chain.size();
    std::size_t specials = params.p_chain.size();
    auto ext_moduli = ctx_->extendedModuli(q_limbs - 1);

    RnsPoly out(key_poly.degree(), ext_moduli, math::PolyForm::eval);
    for (std::size_t i = 0; i < q_limbs; ++i)
        out.limb(i) = key_poly.limb(i);
    for (std::size_t i = 0; i < specials; ++i)
        out.limb(q_limbs + i) = key_poly.limb(total_q + i);
    return out;
}

KeySwitchDelta
KeySwitcher::keyMultModDown(const std::vector<RnsPoly> &digits,
                            const EvalKey &key) const
{
    if (digits.empty())
        throw std::invalid_argument("no digits to key-switch");
    if (digits.size() > key.parts.size())
        throw std::invalid_argument("digit count exceeds key parts");

    std::size_t specials = ctx_->params().p_chain.size();
    std::size_t q_limbs = digits[0].limbCount() - specials;
    auto ext_moduli = digits[0].moduli();

    RnsPoly acc0(digits[0].degree(), ext_moduli, math::PolyForm::eval);
    RnsPoly acc1 = acc0;
    for (std::size_t j = 0; j < digits.size(); ++j) {
        RnsPoly b = restrictKeyPoly(key.parts[j].b, q_limbs);
        RnsPoly a = restrictKeyPoly(key.parts[j].a, q_limbs);
        b.hadamardInPlace(digits[j]);
        a.hadamardInPlace(digits[j]);
        acc0 += b;
        acc1 += a;
    }
    return {modDown(acc0), modDown(acc1)};
}

RnsPoly
KeySwitcher::modDown(const RnsPoly &extended) const
{
    const auto &params = ctx_->params();
    std::size_t specials = params.p_chain.size();
    std::size_t q_limbs = extended.limbCount() - specials;
    std::size_t n = extended.degree();

    // Special limbs to coefficient form.
    std::vector<std::vector<u64>> p_coeff(specials);
    for (std::size_t i = 0; i < specials; ++i) {
        p_coeff[i] = extended.limb(q_limbs + i);
        math::NttTableCache::get(n, params.p_chain[i])
            ->inverse(p_coeff[i]);
    }

    // BConv specials -> q basis.
    std::vector<u64> q_mods(extended.moduli().begin(),
                            extended.moduli().begin() +
                                static_cast<std::ptrdiff_t>(q_limbs));
    const auto &conv = ctx_->converter(params.p_chain, q_mods);
    std::vector<std::vector<u64>> converted(
        q_limbs, std::vector<u64>(n));
    std::vector<u64> residues(specials), out;
    for (std::size_t c = 0; c < n; ++c) {
        for (std::size_t i = 0; i < specials; ++i)
            residues[i] = p_coeff[i][c];
        out = conv.convert(residues);
        for (std::size_t i = 0; i < q_limbs; ++i)
            converted[i][c] = out[i];
    }

    // result_i = (x_i - conv_i) * P^{-1} mod q_i.
    RnsPoly result(n, q_mods, math::PolyForm::eval);
    for (std::size_t i = 0; i < q_limbs; ++i) {
        u64 q = q_mods[i];
        math::NttTableCache::get(n, q)->forward(converted[i]);
        u64 p_inv = math::invMod(ctx_->specialProductMod(q), q);
        u64 p_inv_shoup = math::shoupPrecompute(p_inv, q);
        const auto &src = extended.limb(i);
        auto &dst = result.limb(i);
        for (std::size_t c = 0; c < n; ++c) {
            u64 diff = math::subMod(src[c], converted[i][c], q);
            dst[c] = math::mulModShoup(diff, p_inv, p_inv_shoup, q);
        }
    }
    return result;
}

KeySwitchDelta
KeySwitcher::apply(const RnsPoly &input, const EvalKey &key) const
{
    return keyMultModDown(decompose(input, key.method), key);
}

} // namespace fast::ckks
