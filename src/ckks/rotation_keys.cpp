/**
 * @file
 * Implementation of rotation-key sets.
 */
#include "ckks/rotation_keys.hpp"

#include <stdexcept>

namespace fast::ckks {

RotationKeySet::RotationKeySet(const KeyGenerator &keygen,
                               KeySwitchMethod method,
                               std::size_t slot_count)
    : method_(method), slots_(slot_count)
{
    if (slot_count == 0 || (slot_count & (slot_count - 1)) != 0)
        throw std::invalid_argument("slot count must be a power of two");
    for (std::size_t p = 1; p < slots_; p <<= 1)
        keys_.emplace(p, keygen.makeRotationKey(
                             static_cast<std::ptrdiff_t>(p), method));
}

std::size_t
RotationKeySet::normalize(std::ptrdiff_t steps) const
{
    auto n = static_cast<std::ptrdiff_t>(slots_);
    return static_cast<std::size_t>(((steps % n) + n) % n);
}

void
RotationKeySet::addExact(const KeyGenerator &keygen,
                         std::ptrdiff_t steps)
{
    std::size_t amount = normalize(steps);
    if (amount == 0)
        return;
    keys_.emplace(amount, keygen.makeRotationKey(
                              static_cast<std::ptrdiff_t>(amount),
                              method_));
}

bool
RotationKeySet::hasExact(std::ptrdiff_t steps) const
{
    std::size_t amount = normalize(steps);
    return amount == 0 || keys_.count(amount) != 0;
}

std::size_t
RotationKeySet::switchesFor(std::ptrdiff_t steps) const
{
    std::size_t amount = normalize(steps);
    if (amount == 0)
        return 0;
    if (keys_.count(amount))
        return 1;
    std::size_t switches = 0;
    for (std::size_t bit = 1; bit < slots_; bit <<= 1)
        switches += (amount & bit) ? 1 : 0;
    return switches;
}

Ciphertext
RotationKeySet::rotate(const CkksEvaluator &eval, const Ciphertext &ct,
                       std::ptrdiff_t steps) const
{
    std::size_t amount = normalize(steps);
    if (amount == 0)
        return ct;
    auto exact = keys_.find(amount);
    if (exact != keys_.end())
        return eval.rotate(ct, static_cast<std::ptrdiff_t>(amount),
                           exact->second);
    Ciphertext out = ct;
    for (std::size_t bit = 1; bit < slots_; bit <<= 1) {
        if ((amount & bit) == 0)
            continue;
        out = eval.rotate(out, static_cast<std::ptrdiff_t>(bit),
                          keys_.at(bit));
    }
    return out;
}

std::size_t
RotationKeySet::storedBytes() const
{
    std::size_t total = 0;
    for (const auto &[amount, key] : keys_) {
        (void)amount;
        total += key.storedBytes();
    }
    return total;
}

} // namespace fast::ckks
