/**
 * @file
 * Implementation of CKKS key generation.
 */
#include "ckks/keys.hpp"

#include <cmath>

#include "math/bignum.hpp"

namespace fast::ckks {

namespace {

/** Product of the special primes as a big integer. */
math::BigUInt
specialProduct(const CkksParams &params)
{
    return math::BigUInt::productOf(params.p_chain);
}

} // namespace

std::size_t
EvalKey::storedBytes() const
{
    std::size_t total = 0;
    for (const auto &part : parts)
        total += part.b.limbCount() * part.b.degree() * sizeof(u64);
    return total;
}

std::vector<RnsPoly>
expandEvalKeyA(const CkksContext &ctx, u64 seed, std::size_t part_count)
{
    math::Prng prng(seed);
    auto moduli = ctx.keyModuli();
    std::vector<RnsPoly> out;
    out.reserve(part_count);
    for (std::size_t j = 0; j < part_count; ++j) {
        RnsPoly a(ctx.degree(), moduli, math::PolyForm::eval);
        a.fillUniform(prng);
        out.push_back(std::move(a));
    }
    return out;
}

KeyGenerator::KeyGenerator(std::shared_ptr<const CkksContext> ctx, u64 seed)
    : ctx_(std::move(ctx)), prng_(seed), next_key_seed_(seed ^ 0x9e37ull)
{
    const auto &params = ctx_->params();
    auto key_moduli = ctx_->keyModuli();

    secret_.s = RnsPoly(ctx_->degree(), key_moduli,
                        math::PolyForm::coeff);
    if (params.secret_hamming > 0)
        secret_.s.fillSparseTernary(prng_, params.secret_hamming);
    else
        secret_.s.fillTernary(prng_);
    secret_.s.toEval();

    // Public key over Q only.
    auto q_moduli = ctx_->qModuli(params.maxLevel());
    RnsPoly s_q = secret_.s;
    s_q.keepLimbs(q_moduli.size());
    public_.a = RnsPoly(ctx_->degree(), q_moduli, math::PolyForm::eval);
    public_.a.fillUniform(prng_);
    RnsPoly e(ctx_->degree(), q_moduli, math::PolyForm::coeff);
    e.fillGaussian(prng_, params.noise_sigma);
    e.toEval();
    public_.b = public_.a.hadamard(s_q);
    public_.b.negateInPlace();
    public_.b += e;
}

EvalKey
KeyGenerator::makeRelinKey(KeySwitchMethod method) const
{
    RnsPoly s_sq = secret_.s.hadamard(secret_.s);
    return makeKeyFor(s_sq, method, 0);
}

EvalKey
KeyGenerator::makeRotationKey(std::ptrdiff_t steps,
                              KeySwitchMethod method) const
{
    return makeGaloisKey(ctx_->encoder().galoisForRotation(steps),
                         method);
}

EvalKey
KeyGenerator::makeConjugationKey(KeySwitchMethod method) const
{
    return makeGaloisKey(ctx_->encoder().galoisForConjugation(), method);
}

EvalKey
KeyGenerator::makeGaloisKey(u64 galois_elt, KeySwitchMethod method) const
{
    RnsPoly s_rot = secret_.s.automorphism(galois_elt);
    return makeKeyFor(s_rot, method, galois_elt);
}

EvalKey
KeyGenerator::makeKeyFor(const RnsPoly &target, KeySwitchMethod method,
                         u64 galois) const
{
    EvalKey key = method == KeySwitchMethod::hybrid
                      ? makeHybridKey(target, galois)
                      : makeGadgetKey(target, galois);
    return key;
}

namespace {

/**
 * Assemble evk parts: part j encrypts factor_j(m) * target under s,
 * where factors[j][limb] is the per-limb multiplier (already includes
 * the special-prime product P).
 */
std::vector<EvalKeyPart>
makeParts(const CkksContext &ctx, const SecretKey &secret,
          const RnsPoly &target,
          const std::vector<std::vector<u64>> &factors, u64 seed,
          math::Prng &noise_prng, double sigma)
{
    auto a_halves = expandEvalKeyA(ctx, seed, factors.size());
    std::vector<EvalKeyPart> parts;
    parts.reserve(factors.size());
    for (std::size_t j = 0; j < factors.size(); ++j) {
        EvalKeyPart part;
        part.a = std::move(a_halves[j]);
        RnsPoly e(ctx.degree(), ctx.keyModuli(), math::PolyForm::coeff);
        e.fillGaussian(noise_prng, sigma);
        e.toEval();
        // b = -a*s + e + factor .* target
        part.b = part.a.hadamard(secret.s);
        part.b.negateInPlace();
        part.b += e;
        RnsPoly scaled_target = target;
        scaled_target.scalePerLimb(factors[j]);
        part.b += scaled_target;
        parts.push_back(std::move(part));
    }
    return parts;
}

} // namespace

EvalKey
KeyGenerator::makeHybridKey(const RnsPoly &target, u64 galois) const
{
    const auto &params = ctx_->params();
    std::size_t top = params.maxLevel();
    std::size_t limbs = params.limbsAtLevel(top);
    std::size_t beta = params.betaAtLevel(top);
    auto key_moduli = ctx_->keyModuli();
    math::BigUInt p_big = specialProduct(params);

    std::vector<std::vector<u64>> factors(beta);
    for (std::size_t j = 0; j < beta; ++j) {
        std::size_t first = j * params.alpha;
        std::size_t count = std::min(params.alpha, limbs - first);
        // Group basis G_j and complement product Qhat_j = Q / Q_j.
        std::vector<u64> group(params.q_chain.begin() + first,
                               params.q_chain.begin() + first + count);
        math::BigUInt q_hat(u64(1));
        for (std::size_t i = 0; i < limbs; ++i)
            if (i < first || i >= first + count)
                q_hat = q_hat * params.q_chain[i];
        // t_j = Qhat_j^{-1} mod Q_j via CRT over the group basis.
        math::RnsBasis group_basis(group);
        std::vector<u64> inv_res(group.size());
        for (std::size_t i = 0; i < group.size(); ++i)
            inv_res[i] = math::invMod(q_hat.mod(group[i]), group[i]);
        math::BigUInt t_j = group_basis.compose(inv_res);

        factors[j].resize(key_moduli.size());
        for (std::size_t mi = 0; mi < key_moduli.size(); ++mi) {
            u64 m = key_moduli[mi];
            u64 f = math::mulMod(p_big.mod(m), q_hat.mod(m), m);
            factors[j][mi] = math::mulMod(f, t_j.mod(m), m);
        }
    }

    EvalKey key;
    key.method = KeySwitchMethod::hybrid;
    key.galois = galois;
    key.seed = next_key_seed_ + prng_.next() % 1000003;
    key.parts = makeParts(*ctx_, secret_, target, factors, key.seed,
                          prng_, params.noise_sigma);
    return key;
}

EvalKey
KeyGenerator::makeGadgetKey(const RnsPoly &target, u64 galois) const
{
    const auto &params = ctx_->params();
    std::size_t top = params.maxLevel();
    std::size_t digits = params.gadgetDigitsAtLevel(top);
    auto key_moduli = ctx_->keyModuli();
    math::BigUInt p_big = specialProduct(params);

    // Part t encrypts P * 2^{v*t} * target.
    std::vector<std::vector<u64>> factors(digits);
    for (std::size_t t = 0; t < digits; ++t) {
        factors[t].resize(key_moduli.size());
        for (std::size_t mi = 0; mi < key_moduli.size(); ++mi) {
            u64 m = key_moduli[mi];
            u64 w = math::powMod(2,
                                 static_cast<u64>(params.digit_bits) * t,
                                 m);
            factors[t][mi] = math::mulMod(p_big.mod(m), w, m);
        }
    }

    EvalKey key;
    key.method = KeySwitchMethod::klss;
    key.galois = galois;
    key.digit_bits = params.digit_bits;
    key.seed = next_key_seed_ + prng_.next() % 1000003;
    key.parts = makeParts(*ctx_, secret_, target, factors, key.seed,
                          prng_, params.noise_sigma);
    return key;
}

bool
KeyGenerator::verifySeedExpansion(const CkksContext &ctx,
                                  const EvalKey &key)
{
    auto expanded = expandEvalKeyA(ctx, key.seed, key.parts.size());
    for (std::size_t j = 0; j < key.parts.size(); ++j)
        if (!(expanded[j] == key.parts[j].a))
            return false;
    return true;
}

} // namespace fast::ckks
