/**
 * @file
 * CKKS encryption, decryption, and homomorphic evaluation.
 *
 * Implements the paper's primitive operation set (Sec. 2.1.2): HAdd,
 * HMult, PAdd, PMult, CMult, HRot, conjugation, rescaling, and modulus
 * drops, on top of the KeySwitcher. Also provides HoistedRotator,
 * which shares one decomposition across many rotations of the same
 * ciphertext (the hoisting technique, Sec. 2.2.3).
 */
#ifndef FAST_CKKS_EVALUATOR_HPP
#define FAST_CKKS_EVALUATOR_HPP

#include <memory>
#include <vector>

#include "ckks/ciphertext.hpp"
#include "ckks/keyswitch.hpp"

namespace fast::ckks {

/**
 * The homomorphic evaluator. Stateless; all key material is passed
 * explicitly so a single evaluator serves any number of parties.
 */
class CkksEvaluator
{
  public:
    explicit CkksEvaluator(std::shared_ptr<const CkksContext> ctx);

    const CkksContext &context() const { return *ctx_; }
    const KeySwitcher &switcher() const { return switcher_; }

    /** @name Encoding and encryption. */
    ///@{
    /** Encode to eval form at the given level and scale. */
    Plaintext encode(const std::vector<Complex> &values, double scale,
                     std::size_t level) const;
    /** Encode a real constant replicated across all slots. */
    Plaintext encodeConstant(double value, double scale,
                             std::size_t level) const;

    Ciphertext encrypt(const Plaintext &pt, const PublicKey &pk,
                       math::Prng &prng) const;
    Ciphertext encryptSymmetric(const Plaintext &pt, const SecretKey &sk,
                                math::Prng &prng) const;

    /** Decrypt to a coefficient-form plaintext. */
    Plaintext decrypt(const Ciphertext &ct, const SecretKey &sk) const;

    /** Decrypt and decode to @p slot_count complex slots. */
    std::vector<Complex> decryptDecode(const Ciphertext &ct,
                                       const SecretKey &sk,
                                       std::size_t slot_count) const;
    ///@}

    /** @name Arithmetic. */
    ///@{
    Ciphertext add(const Ciphertext &a, const Ciphertext &b) const;
    Ciphertext sub(const Ciphertext &a, const Ciphertext &b) const;
    Ciphertext negate(const Ciphertext &a) const;
    Ciphertext addPlain(const Ciphertext &a, const Plaintext &p) const;
    Ciphertext subPlain(const Ciphertext &a, const Plaintext &p) const;
    /** PMult: plaintext-ciphertext product (scales multiply). */
    Ciphertext multiplyPlain(const Ciphertext &a,
                             const Plaintext &p) const;
    /** CMult: multiply by a real constant (scales by ctx scale). */
    Ciphertext multiplyConstant(const Ciphertext &a, double value) const;
    /**
     * Multiply by the monomial X^power — exact, no scale or level
     * change. With power = N/2 this multiplies every slot by i
     * (the slots sit at exponents congruent to 1 mod 4), which the
     * bootstrapper uses to split real and imaginary parts for free.
     */
    Ciphertext multiplyByMonomial(const Ciphertext &a,
                                  std::size_t power) const;
    /** HMult: ciphertext-ciphertext product with relinearization. */
    Ciphertext multiply(const Ciphertext &a, const Ciphertext &b,
                        const EvalKey &relin_key) const;
    Ciphertext square(const Ciphertext &a,
                      const EvalKey &relin_key) const;
    ///@}

    /**
     * @name Maintenance.
     *
     * Mutate-vs-return naming convention: every maintenance operation
     * comes in two spellings —
     *
     * | mutating (modifies the argument) | value-returning twin       |
     * |----------------------------------|----------------------------|
     * | `rescaleInPlace(ct)`             | `ct2 = rescale(ct)`        |
     * | `rescaleDoubleInPlace(ct)`       | `ct2 = rescaleDouble(ct)`  |
     * | `dropToLevelInPlace(ct, l)`      | `ct2 = dropToLevel(ct, l)` |
     * | `setScaleInPlace(ct, s)`         | `ct2 = withScale(ct, s)`   |
     *
     * The `...InPlace` form takes `Ciphertext&` and returns void; the
     * twin takes `const Ciphertext&` and returns the result (and is
     * `[[nodiscard]]`, so accidentally calling it for effect is a
     * compile warning). Arithmetic (`add`, `multiply`, `rotate`,
     * `HoistedRotator::rotate`, ...) is value-returning only.
     */
    ///@{
    /** Divide by the last prime and drop it (scale /= q_last). */
    void rescaleInPlace(Ciphertext &ct) const;
    [[nodiscard]] Ciphertext rescale(const Ciphertext &ct) const
    {
        Ciphertext out = ct;
        rescaleInPlace(out);
        return out;
    }
    /**
     * DSU-style double rescale (Sec. 5.7.1): divide by the product of
     * the last two primes in a single fused pass — the operation the
     * paper applies after every multiplication to hold 36-bit
     * precision.
     */
    void rescaleDoubleInPlace(Ciphertext &ct) const;
    [[nodiscard]] Ciphertext rescaleDouble(const Ciphertext &ct) const
    {
        Ciphertext out = ct;
        rescaleDoubleInPlace(out);
        return out;
    }
    /** Drop limbs without dividing (modulus switch to @p level). */
    void dropToLevelInPlace(Ciphertext &ct, std::size_t level) const;
    [[nodiscard]] Ciphertext dropToLevel(const Ciphertext &ct,
                                         std::size_t level) const
    {
        Ciphertext out = ct;
        dropToLevelInPlace(out, level);
        return out;
    }
    /** Force the bookkeeping scale (used after EvalMod-style steps). */
    void setScaleInPlace(Ciphertext &ct, double scale) const
    {
        ct.scale = scale;
    }
    [[nodiscard]] Ciphertext withScale(const Ciphertext &ct,
                                       double scale) const
    {
        Ciphertext out = ct;
        out.scale = scale;
        return out;
    }
    ///@}

    /** @name Rotations. */
    ///@{
    /** HRot: rotate slots left by @p steps using a matching key. */
    Ciphertext rotate(const Ciphertext &ct, std::ptrdiff_t steps,
                      const EvalKey &key) const;
    Ciphertext conjugate(const Ciphertext &ct, const EvalKey &key) const;
    Ciphertext applyGalois(const Ciphertext &ct, u64 galois_elt,
                           const EvalKey &key) const;
    ///@}

  private:
    void requireSameShape(const Ciphertext &a, const Ciphertext &b) const;

    std::shared_ptr<const CkksContext> ctx_;
    KeySwitcher switcher_;
};

/**
 * Hoisted rotation helper: decomposes a ciphertext's c1 once and
 * reuses the digits for every subsequent rotation. The per-rotation
 * cost drops from ModUp + KeyMult + ModDown to an automorphism +
 * KeyMult + ModDown (Sec. 2.2.3); the cost model quantifies the
 * savings and Aether decides when they pay off.
 */
class HoistedRotator
{
  public:
    /**
     * Decompose @p ct under the given method (must match the rotation
     * keys that will be used).
     */
    HoistedRotator(const CkksEvaluator &evaluator, const Ciphertext &ct,
                   KeySwitchMethod method);

    /** Rotate by @p steps; key must be for the same method. */
    Ciphertext rotate(std::ptrdiff_t steps, const EvalKey &key) const;

    /** Number of precomputed digit polynomials. */
    std::size_t digitCount() const { return digits_.size(); }

  private:
    const CkksEvaluator &evaluator_;
    Ciphertext base_;
    KeySwitchMethod method_;
    std::vector<RnsPoly> digits_;
};

} // namespace fast::ckks

#endif // FAST_CKKS_EVALUATOR_HPP
