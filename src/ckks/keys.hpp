/**
 * @file
 * CKKS key material and key generation.
 *
 * Evaluation keys come in two flavors matching the paper's two
 * key-switching methods (Sec. 2.1.3): hybrid keys carry one part per
 * RNS digit group (beta parts), gadget (KLSS-style) keys carry one
 * part per 2^v digit (beta~ parts). Every part's `a` half is expanded
 * from a PRNG seed, reproducing the paper's Evaluation Key Generator
 * (EKG, Sec. 5.7.2) that halves evk storage.
 */
#ifndef FAST_CKKS_KEYS_HPP
#define FAST_CKKS_KEYS_HPP

#include <map>
#include <memory>
#include <vector>

#include "ckks/ciphertext.hpp"
#include "ckks/context.hpp"

namespace fast::ckks {

/** The ternary secret key over the full key basis (Q + specials). */
struct SecretKey {
    RnsPoly s;  ///< eval form over keyModuli()
};

/** Public encryption key (b, a) = (-a*s + e, a) over the full Q. */
struct PublicKey {
    RnsPoly b;
    RnsPoly a;
};

/** One (b_j, a_j) pair of an evaluation key, over the key basis. */
struct EvalKeyPart {
    RnsPoly b;
    RnsPoly a;
};

/**
 * An evaluation key: re-encrypts data under some derived key s'
 * (s^2 for relinearization, phi_g(s) for rotation) back to s.
 */
struct EvalKey {
    KeySwitchMethod method = KeySwitchMethod::hybrid;
    u64 galois = 0;      ///< 0 for relinearization keys
    int digit_bits = 0;  ///< gadget digit width (KLSS keys only)
    u64 seed = 0;        ///< PRNG seed regenerating all `a` halves
    std::vector<EvalKeyPart> parts;

    /** Size in bytes of the stored halves (b only, thanks to EKG). */
    std::size_t storedBytes() const;
};

/**
 * Generates all key material for a context. Deterministic for a seed.
 */
class KeyGenerator
{
  public:
    KeyGenerator(std::shared_ptr<const CkksContext> ctx, u64 seed);

    const SecretKey &secretKey() const { return secret_; }
    const PublicKey &publicKey() const { return public_; }

    /** Relinearization key (s^2 -> s) for the given method. */
    EvalKey makeRelinKey(KeySwitchMethod method) const;

    /** Rotation key for a left-rotation by @p steps. */
    EvalKey makeRotationKey(std::ptrdiff_t steps,
                            KeySwitchMethod method) const;

    /** Conjugation key (galois element 2N-1). */
    EvalKey makeConjugationKey(KeySwitchMethod method) const;

    /** Key for an arbitrary galois element. */
    EvalKey makeGaloisKey(u64 galois_elt, KeySwitchMethod method) const;

    /**
     * Verify that an EvalKey's `a` halves match its seed — the
     * integrity check the on-chip EKG performs when re-expanding.
     */
    static bool verifySeedExpansion(const CkksContext &ctx,
                                    const EvalKey &key);

  private:
    EvalKey makeKeyFor(const RnsPoly &target, KeySwitchMethod method,
                       u64 galois) const;
    EvalKey makeHybridKey(const RnsPoly &target, u64 galois) const;
    EvalKey makeGadgetKey(const RnsPoly &target, u64 galois) const;

    std::shared_ptr<const CkksContext> ctx_;
    mutable math::Prng prng_;
    u64 next_key_seed_;
    SecretKey secret_;
    PublicKey public_;
};

/**
 * Expand the `a` halves of an evk from its seed over the key basis —
 * the software model of the EKG PRNG module.
 */
std::vector<RnsPoly> expandEvalKeyA(const CkksContext &ctx, u64 seed,
                                    std::size_t part_count);

} // namespace fast::ckks

#endif // FAST_CKKS_KEYS_HPP
