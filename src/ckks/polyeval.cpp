/**
 * @file
 * Implementation of homomorphic polynomial evaluation.
 */
#include "ckks/polyeval.hpp"

#include <cmath>
#include <stdexcept>

namespace fast::ckks {

namespace {

const double kPi = std::acos(-1.0);

} // namespace

double
ChebyshevSeries::operator()(double x) const
{
    if (coeffs.empty())
        return 0;
    double u = (2 * x - domain_min - domain_max) /
               (domain_max - domain_min);
    // Clenshaw recurrence.
    double b1 = 0, b2 = 0;
    for (std::size_t j = coeffs.size(); j-- > 1;) {
        double b0 = coeffs[j] + 2 * u * b1 - b2;
        b2 = b1;
        b1 = b0;
    }
    return coeffs[0] + u * b1 - b2;
}

ChebyshevSeries
ChebyshevSeries::fit(const std::function<double(double)> &f, double a,
                     double b, std::size_t degree)
{
    if (b <= a)
        throw std::invalid_argument("empty interpolation domain");
    ChebyshevSeries series;
    series.domain_min = a;
    series.domain_max = b;
    std::size_t m = degree + 1;
    series.coeffs.assign(m, 0.0);
    for (std::size_t j = 0; j < m; ++j) {
        double acc = 0;
        for (std::size_t k = 0; k < m; ++k) {
            double theta = kPi * (static_cast<double>(k) + 0.5) /
                           static_cast<double>(m);
            double u = std::cos(theta);
            double x = 0.5 * (a + b) + 0.5 * (b - a) * u;
            acc += f(x) * std::cos(static_cast<double>(j) * theta);
        }
        series.coeffs[j] = (j == 0 ? 1.0 : 2.0) * acc /
                           static_cast<double>(m);
    }
    return series;
}

double
ChebyshevSeries::maxError(const std::function<double(double)> &f,
                          std::size_t samples) const
{
    double max_err = 0;
    for (std::size_t i = 0; i <= samples; ++i) {
        double x = domain_min + (domain_max - domain_min) *
                                    static_cast<double>(i) /
                                    static_cast<double>(samples);
        max_err = std::max(max_err, std::abs((*this)(x) - f(x)));
    }
    return max_err;
}

std::pair<Ciphertext, Ciphertext>
PolynomialEvaluator::aligned(Ciphertext a, Ciphertext b) const
{
    std::size_t lvl = std::min(a.level(), b.level());
    eval_.dropToLevelInPlace(a, lvl);
    eval_.dropToLevelInPlace(b, lvl);
    eval_.setScaleInPlace(b, a.scale);
    return {std::move(a), std::move(b)};
}

std::size_t
PolynomialEvaluator::depthFor(std::size_t degree)
{
    std::size_t d = 0;
    while ((std::size_t(1) << d) < std::max<std::size_t>(degree, 1))
        ++d;
    return d + 2;  // power tree + constant-mult combine
}

Ciphertext
PolynomialEvaluator::evaluate(const Ciphertext &ct,
                              const ChebyshevSeries &series,
                              const EvalKey &relin_key) const
{
    if (series.coeffs.size() < 2)
        throw std::invalid_argument(
            "series must have degree >= 1 for ciphertext evaluation");
    auto d0 = series.degree();

    // Map slots into [-1, 1]: u = (2x - (a+b)) / (b - a).
    double a = series.domain_min, b = series.domain_max;
    auto u = eval_.multiplyConstant(ct, 2.0 / (b - a));
    eval_.rescaleInPlace(u);
    u = eval_.subPlain(u, eval_.encodeConstant((a + b) / (b - a),
                                               u.scale, u.level()));

    // Chebyshev basis via the halving recurrences.
    std::vector<Ciphertext> t_poly(d0 + 1);
    std::vector<bool> have(d0 + 1, false);
    t_poly[1] = u;
    have[1] = true;

    auto mulAligned = [&](const Ciphertext &x, const Ciphertext &y) {
        auto [p, q] = aligned(x, y);
        auto prod = eval_.multiply(p, q, relin_key);
        eval_.rescaleInPlace(prod);
        return prod;
    };
    auto subConst = [&](Ciphertext v, double c) {
        return eval_.subPlain(
            v, eval_.encodeConstant(c, v.scale, v.level()));
    };

    std::function<const Ciphertext &(std::size_t)> get =
        [&](std::size_t k) -> const Ciphertext & {
        if (have[k])
            return t_poly[k];
        if (k % 2 == 0) {
            auto sq = mulAligned(get(k / 2), get(k / 2));
            t_poly[k] = subConst(eval_.add(sq, sq), 1.0);
        } else {
            auto prod = mulAligned(get((k + 1) / 2), get(k / 2));
            auto dbl = eval_.add(prod, prod);
            auto [x, t1] = aligned(dbl, t_poly[1]);
            t_poly[k] = eval_.sub(x, t1);
        }
        have[k] = true;
        return t_poly[k];
    };

    // Combine sum_j c_j T_j.
    std::size_t min_level = u.level();
    for (std::size_t j = 1; j <= d0; ++j)
        if (std::abs(series.coeffs[j]) > 1e-13)
            min_level = std::min(min_level, get(j).level());

    Ciphertext acc;
    bool acc_set = false;
    for (std::size_t j = 1; j <= d0; ++j) {
        if (std::abs(series.coeffs[j]) < 1e-13)
            continue;
        auto term = eval_.multiplyConstant(get(j), series.coeffs[j]);
        eval_.rescaleInPlace(term);
        eval_.dropToLevelInPlace(term, min_level - 1);
        if (acc_set) {
            eval_.setScaleInPlace(term, acc.scale);
            acc = eval_.add(acc, term);
        } else {
            acc = std::move(term);
            acc_set = true;
        }
    }
    if (!acc_set)
        throw std::invalid_argument("series has no nonzero terms");
    return eval_.addPlain(
        acc, eval_.encodeConstant(series.coeffs[0], acc.scale,
                                  acc.level()));
}

Ciphertext
PolynomialEvaluator::evaluateMonomial(const Ciphertext &ct,
                                      const std::vector<double> &coeffs,
                                      const EvalKey &relin_key) const
{
    if (coeffs.size() < 2)
        throw std::invalid_argument("need degree >= 1");
    // Powers by repeated squaring/multiplication (fine for the small
    // degrees monomial bases are numerically safe at).
    std::vector<Ciphertext> powers(coeffs.size());
    std::vector<bool> have(coeffs.size(), false);
    powers[1] = ct;
    have[1] = true;
    std::function<const Ciphertext &(std::size_t)> pow =
        [&](std::size_t k) -> const Ciphertext & {
        if (have[k])
            return powers[k];
        std::size_t half = k / 2;
        auto [a, b] = aligned(pow(half), pow(k - half));
        auto prod = eval_.multiply(a, b, relin_key);
        eval_.rescaleInPlace(prod);
        powers[k] = std::move(prod);
        have[k] = true;
        return powers[k];
    };

    std::size_t min_level = ct.level();
    for (std::size_t k = 1; k < coeffs.size(); ++k)
        if (std::abs(coeffs[k]) > 1e-13)
            min_level = std::min(min_level, pow(k).level());

    Ciphertext acc;
    bool acc_set = false;
    for (std::size_t k = 1; k < coeffs.size(); ++k) {
        if (std::abs(coeffs[k]) < 1e-13)
            continue;
        auto term = eval_.multiplyConstant(pow(k), coeffs[k]);
        eval_.rescaleInPlace(term);
        eval_.dropToLevelInPlace(term, min_level - 1);
        if (acc_set) {
            eval_.setScaleInPlace(term, acc.scale);
            acc = eval_.add(acc, term);
        } else {
            acc = std::move(term);
            acc_set = true;
        }
    }
    if (!acc_set)
        throw std::invalid_argument("polynomial has no nonzero terms");
    return eval_.addPlain(acc, eval_.encodeConstant(coeffs[0], acc.scale,
                                                    acc.level()));
}

namespace approx {

ChebyshevSeries
relu(double bound, std::size_t degree)
{
    // Smooth surrogate: relu(x) ~ 0.5 x + 0.5 x * tanh(s x) with a
    // sharpness that keeps the fit stable at the requested degree.
    double s = static_cast<double>(degree) / (2.0 * bound);
    return ChebyshevSeries::fit(
        [s](double x) {
            return 0.5 * x + 0.5 * x * std::tanh(s * x);
        },
        -bound, bound, degree);
}

ChebyshevSeries
sigmoid(double bound, std::size_t degree)
{
    return ChebyshevSeries::fit(
        [](double x) { return 1.0 / (1.0 + std::exp(-x)); }, -bound,
        bound, degree);
}

ChebyshevSeries
exponential(double bound, std::size_t degree)
{
    return ChebyshevSeries::fit([](double x) { return std::exp(x); },
                                -bound, bound, degree);
}

} // namespace approx

} // namespace fast::ckks
