/**
 * @file
 * Implementation of BSGS homomorphic linear transforms.
 */
#include "ckks/linear_transform.hpp"

#include <cmath>
#include <optional>
#include <stdexcept>

namespace fast::ckks {

namespace {

std::vector<Complex>
diagonalOf(const std::vector<std::vector<Complex>> &m, std::size_t d)
{
    std::size_t n = m.size();
    std::vector<Complex> diag(n);
    for (std::size_t j = 0; j < n; ++j)
        diag[j] = m[j][(j + d) % n];
    return diag;
}

std::vector<Complex>
rotateLeft(const std::vector<Complex> &v, std::size_t steps)
{
    std::size_t n = v.size();
    std::vector<Complex> out(n);
    for (std::size_t j = 0; j < n; ++j)
        out[j] = v[(j + steps) % n];
    return out;
}

bool
isNegligible(const std::vector<Complex> &v)
{
    for (const auto &x : v)
        if (std::abs(x) > 1e-14)
            return false;
    return true;
}

} // namespace

LinearTransform::LinearTransform(
    std::vector<std::vector<Complex>> matrix, std::size_t baby_steps)
    : n_(matrix.size()), matrix_(std::move(matrix))
{
    if (n_ == 0)
        throw std::invalid_argument("empty matrix");
    for (const auto &row : matrix_)
        if (row.size() != n_)
            throw std::invalid_argument("matrix must be square");
    baby_ = baby_steps ? baby_steps
                       : static_cast<std::size_t>(std::ceil(
                             std::sqrt(static_cast<double>(n_))));
}

std::vector<std::ptrdiff_t>
LinearTransform::requiredRotations() const
{
    std::vector<std::ptrdiff_t> steps;
    for (std::size_t b = 1; b < baby_ && b < n_; ++b)
        steps.push_back(static_cast<std::ptrdiff_t>(b));
    for (std::size_t t = 1; t * baby_ < n_; ++t)
        steps.push_back(static_cast<std::ptrdiff_t>(t * baby_));
    return steps;
}

std::vector<Complex>
LinearTransform::applyPlain(const std::vector<Complex> &v) const
{
    if (v.size() % n_ != 0 && n_ % v.size() != 0)
        throw std::invalid_argument("vector size incompatible");
    std::vector<Complex> out(n_, Complex(0, 0));
    for (std::size_t i = 0; i < n_; ++i)
        for (std::size_t j = 0; j < n_; ++j)
            out[i] += matrix_[i][j] * v[j % v.size()];
    return out;
}

Ciphertext
LinearTransform::apply(const CkksEvaluator &eval, const Ciphertext &ct,
                       const std::map<std::ptrdiff_t, EvalKey> &keys,
                       KeySwitchMethod method, bool hoist_babies) const
{
    std::size_t giants = giantSteps();
    double pt_scale = eval.context().params().scale;
    std::size_t level = ct.level();

    std::optional<HoistedRotator> hoisted;
    if (hoist_babies)
        hoisted.emplace(eval, ct, method);
    std::vector<Ciphertext> babies(baby_);
    babies[0] = ct;
    for (std::size_t b = 1; b < baby_ && b < n_; ++b) {
        auto sb = static_cast<std::ptrdiff_t>(b);
        const auto &key = keys.at(sb);
        babies[b] = hoisted ? hoisted->rotate(sb, key)
                            : eval.rotate(ct, sb, key);
    }

    Ciphertext acc;
    bool acc_set = false;
    for (std::size_t t = 0; t < giants; ++t) {
        Ciphertext inner;
        bool inner_set = false;
        for (std::size_t b = 0; b < baby_; ++b) {
            std::size_t d = t * baby_ + b;
            if (d >= n_)
                break;
            auto diag = rotateLeft(diagonalOf(matrix_, d),
                                   (n_ - t * baby_ % n_) % n_);
            if (isNegligible(diag))
                continue;
            auto pt = eval.encode(diag, pt_scale, level);
            auto term = eval.multiplyPlain(babies[b], pt);
            if (inner_set) {
                inner = eval.add(inner, term);
            } else {
                inner = std::move(term);
                inner_set = true;
            }
        }
        if (!inner_set)
            continue;
        Ciphertext shifted =
            t == 0 ? std::move(inner)
                   : eval.rotate(inner,
                                 static_cast<std::ptrdiff_t>(t * baby_),
                                 keys.at(static_cast<std::ptrdiff_t>(
                                     t * baby_)));
        if (acc_set) {
            acc = eval.add(acc, shifted);
        } else {
            acc = std::move(shifted);
            acc_set = true;
        }
    }
    if (!acc_set)
        throw std::invalid_argument("transform of the zero matrix");
    auto out = acc;
    eval.rescaleInPlace(out);
    return out;
}

} // namespace fast::ckks
