/**
 * @file
 * Binary serialization of CKKS objects.
 *
 * Ciphertexts travel between the client and the evaluating server,
 * and evaluation keys stream from host memory into the accelerator's
 * Evk Pool (Sec. 4.1.2) — both need a stable wire format. Evaluation
 * keys serialize with only their `b` halves plus the PRNG seed; the
 * `a` halves are regenerated on load, exactly the storage-halving
 * trick of the paper's EKG (Sec. 5.7.2).
 */
#ifndef FAST_CKKS_SERIALIZE_HPP
#define FAST_CKKS_SERIALIZE_HPP

#include <cstdint>
#include <vector>

#include "ckks/keys.hpp"

namespace fast::ckks {

using Bytes = std::vector<std::uint8_t>;

/** @name Polynomials. */
///@{
Bytes serialize(const math::RnsPoly &poly);
math::RnsPoly deserializePoly(const Bytes &data, std::size_t &offset);
///@}

/** @name Ciphertexts and plaintexts. */
///@{
Bytes serialize(const Ciphertext &ct);
Ciphertext deserializeCiphertext(const Bytes &data);

Bytes serialize(const Plaintext &pt);
Plaintext deserializePlaintext(const Bytes &data);
///@}

/** @name Evaluation keys (EKG-compressed: b halves + seed). */
///@{
Bytes serialize(const EvalKey &key);

/**
 * Reconstruct an EvalKey; the `a` halves are re-expanded from the
 * stored seed via the context's key basis (must match the writer's).
 */
EvalKey deserializeEvalKey(const Bytes &data, const CkksContext &ctx);
///@}

/** Serialized size in bytes without building the buffer. */
std::size_t serializedBytes(const Ciphertext &ct);
std::size_t serializedBytes(const EvalKey &key);

} // namespace fast::ckks

#endif // FAST_CKKS_SERIALIZE_HPP
