/**
 * @file
 * Implementation of CKKS bootstrapping.
 */
#include "ckks/bootstrap.hpp"

#include <cmath>
#include <functional>
#include <optional>
#include <stdexcept>

namespace fast::ckks {

namespace {

const double kPi = std::acos(-1.0);

/** Extract diagonal d of matrix m (indexed [out][in], n x n). */
std::vector<Complex>
diagonalOf(const std::vector<std::vector<Complex>> &m, std::size_t d)
{
    std::size_t n = m.size();
    std::vector<Complex> diag(n);
    for (std::size_t j = 0; j < n; ++j)
        diag[j] = m[j][(j + d) % n];
    return diag;
}

/** Cyclically rotate a vector left by @p steps. */
std::vector<Complex>
rotateVec(const std::vector<Complex> &v, std::size_t steps)
{
    std::size_t n = v.size();
    std::vector<Complex> out(n);
    for (std::size_t j = 0; j < n; ++j)
        out[j] = v[(j + steps) % n];
    return out;
}

bool
isNegligible(const std::vector<Complex> &v)
{
    for (const auto &x : v)
        if (std::abs(x) > 1e-14)
            return false;
    return true;
}

} // namespace

Bootstrapper::Bootstrapper(std::shared_ptr<const CkksContext> ctx,
                           BootstrapConfig config)
    : ctx_(ctx), eval_(ctx), config_(config),
      n_sparse_(ctx->params().slots)
{
    const auto &params = ctx_->params();
    if (n_sparse_ == 0 || (n_sparse_ & (n_sparse_ - 1)) != 0)
        throw std::invalid_argument("sparse slot count must be 2^k");
    if (params.secret_hamming == 0 && n_sparse_ < params.degree / 2)
        throw std::invalid_argument(
            "sparse bootstrapping needs a sparse secret (range bound)");

    std::size_t n = n_sparse_;
    std::size_t four_n = 4 * n;
    // psi' = primitive 4n-th root of unity; rot group 5^j mod 4n.
    psi_pows_.resize(four_n);
    for (std::size_t k = 0; k < four_n; ++k) {
        double ang = 2.0 * kPi * static_cast<double>(k) /
                     static_cast<double>(four_n);
        psi_pows_[k] = Complex(std::cos(ang), std::sin(ang));
    }
    rot_group_.resize(2 * n);
    std::size_t e = 1;
    for (std::size_t j = 0; j < 2 * n; ++j) {
        rot_group_[j] = e;
        e = (e * 5) % four_n;
    }

    double q0 = static_cast<double>(params.q_chain[0]);
    double delta = params.scale;
    double replicas = static_cast<double>(params.degree / 2 / n);
    double k_range = static_cast<double>(config_.range_k);

    // CoeffToSlot: p_t = s_B * [(E'^H z)_t + i (E'^H z)_{t+n}
    //                         + (E'^T conj(z))_t + i (...)_{t+n}].
    double s_b = 0.5 * delta / (q0 * k_range * 2.0 *
                                static_cast<double>(n) * replicas);
    mat_cts_b_.assign(n, std::vector<Complex>(n));
    mat_cts_c_.assign(n, std::vector<Complex>(n));
    for (std::size_t t = 0; t < n; ++t) {
        for (std::size_t j = 0; j < n; ++j) {
            Complex w_t = psi_pows_[(rot_group_[j] * t) % four_n];
            Complex w_tn = psi_pows_[(rot_group_[j] * (t + n)) % four_n];
            mat_cts_b_[t][j] =
                s_b * (std::conj(w_t) +
                       Complex(0, 1) * std::conj(w_tn));
            mat_cts_c_[t][j] =
                s_b * (w_t + Complex(0, 1) * w_tn);
        }
    }

    // SlotToCoeff: out_j = s_D * sum_t psi'^{e_j t} re_t
    //                    + s_D * sum_t psi'^{e_j (t+n)} im_t.
    double s_d = q0 / (2.0 * kPi * delta);
    mat_stc_d_.assign(n, std::vector<Complex>(n));
    mat_stc_f_.assign(n, std::vector<Complex>(n));
    for (std::size_t j = 0; j < n; ++j) {
        for (std::size_t t = 0; t < n; ++t) {
            mat_stc_d_[j][t] =
                s_d * psi_pows_[(rot_group_[j] * t) % four_n];
            mat_stc_f_[j][t] =
                s_d * psi_pows_[(rot_group_[j] * (t + n)) % four_n];
        }
    }

    // Chebyshev coefficients of f(y) = cos((2 pi K y - pi/2) / 2^r)
    // on [-1, 1]; after r double-angle steps this becomes sin(2piKy).
    int d0 = config_.cheb_degree;
    int m_nodes = d0 + 1;
    double pow_r = std::pow(2.0, config_.double_angles);
    auto f = [&](double y) {
        return std::cos((2.0 * kPi * k_range * y - kPi / 2.0) / pow_r);
    };
    cheb_coeffs_.assign(static_cast<std::size_t>(d0) + 1, 0.0);
    for (int j = 0; j <= d0; ++j) {
        double acc = 0;
        for (int m = 0; m < m_nodes; ++m) {
            double theta = kPi * (m + 0.5) / m_nodes;
            acc += f(std::cos(theta)) * std::cos(j * theta);
        }
        cheb_coeffs_[static_cast<std::size_t>(j)] =
            (j == 0 ? 1.0 : 2.0) * acc / m_nodes;
    }
}

std::vector<std::ptrdiff_t>
Bootstrapper::requiredRotations() const
{
    std::size_t n = n_sparse_;
    std::size_t g = config_.baby_steps
                        ? config_.baby_steps
                        : static_cast<std::size_t>(std::ceil(
                              std::sqrt(static_cast<double>(n))));
    std::vector<std::ptrdiff_t> steps;
    for (std::size_t b = 1; b < g && b < n; ++b)
        steps.push_back(static_cast<std::ptrdiff_t>(b));
    for (std::size_t t = 1; t * g < n; ++t)
        steps.push_back(static_cast<std::ptrdiff_t>(t * g));
    // SubSum doubling rotations project onto the sparse subring.
    std::size_t replicas = ctx_->params().degree / 2 / n;
    for (std::size_t r = 1; r < replicas; r <<= 1)
        steps.push_back(static_cast<std::ptrdiff_t>(r * n));
    return steps;
}

BootstrapKeys
Bootstrapper::makeKeys(const KeyGenerator &keygen) const
{
    BootstrapKeys keys;
    keys.relin = keygen.makeRelinKey(config_.mod_method);
    keys.conj = keygen.makeConjugationKey(config_.lt_method);
    for (auto s : requiredRotations())
        keys.rotations.emplace(s,
                               keygen.makeRotationKey(s,
                                                      config_.lt_method));
    return keys;
}

std::size_t
Bootstrapper::depth() const
{
    // CtS LT (1) + Chebyshev tree + combine + double angles + StC (1).
    std::size_t cheb_depth = 1;
    while ((std::size_t(1) << cheb_depth) <
           static_cast<std::size_t>(config_.cheb_degree))
        ++cheb_depth;
    return 1 + cheb_depth + 1 +
           static_cast<std::size_t>(config_.double_angles) + 1;
}

Ciphertext
Bootstrapper::modRaise(const Ciphertext &ct) const
{
    const auto &params = ctx_->params();
    Ciphertext low = ct;
    if (low.level() != 0)
        eval_.dropToLevelInPlace(low, 0);
    u64 q0 = params.q_chain[0];
    auto full = ctx_->qModuli(params.maxLevel());
    std::size_t n = ctx_->degree();

    Ciphertext out;
    out.scale = low.scale;
    for (auto [src, dst] : {std::pair{&low.c0, &out.c0},
                            std::pair{&low.c1, &out.c1}}) {
        RnsPoly coeff = *src;
        coeff.toCoeff();
        RnsPoly raised(n, full, math::PolyForm::coeff);
        for (std::size_t c = 0; c < n; ++c) {
            math::i64 v = math::toCentered(coeff.limb(0)[c], q0);
            for (std::size_t i = 0; i < full.size(); ++i)
                raised.limb(i)[c] = math::fromCentered(v, full[i]);
        }
        raised.toEval();
        *dst = std::move(raised);
    }
    return out;
}

Ciphertext
Bootstrapper::rotateMaybeHoisted(const HoistedRotator *hoisted,
                                 const Ciphertext &ct,
                                 std::ptrdiff_t steps,
                                 const BootstrapKeys &keys) const
{
    const EvalKey &key = keys.rotations.at(steps);
    if (hoisted)
        return hoisted->rotate(steps, key);
    return eval_.rotate(ct, steps, key);
}

Ciphertext
Bootstrapper::linearTransform(
    const Ciphertext &ct1, const std::vector<std::vector<Complex>> &m1,
    const Ciphertext *ct2, const std::vector<std::vector<Complex>> &m2,
    const BootstrapKeys &keys) const
{
    std::size_t n = n_sparse_;
    std::size_t g = config_.baby_steps
                        ? config_.baby_steps
                        : static_cast<std::size_t>(std::ceil(
                              std::sqrt(static_cast<double>(n))));
    std::size_t giants = (n + g - 1) / g;
    double pt_scale = ctx_->params().scale;
    std::size_t level = ct1.level();

    // Baby rotations (shared across every giant step) — the hoisting
    // win: one decomposition per input ciphertext.
    std::optional<HoistedRotator> h1, h2;
    if (config_.use_hoisting) {
        h1.emplace(eval_, ct1, config_.lt_method);
        if (ct2)
            h2.emplace(eval_, *ct2, config_.lt_method);
    }
    std::vector<Ciphertext> r1(g), r2(ct2 ? g : 0);
    r1[0] = ct1;
    if (ct2)
        r2[0] = *ct2;
    for (std::size_t b = 1; b < g; ++b) {
        auto sb = static_cast<std::ptrdiff_t>(b);
        r1[b] = rotateMaybeHoisted(h1 ? &*h1 : nullptr, ct1, sb, keys);
        if (ct2)
            r2[b] = rotateMaybeHoisted(h2 ? &*h2 : nullptr, *ct2, sb,
                                       keys);
    }

    Ciphertext acc;
    bool acc_set = false;
    for (std::size_t t = 0; t < giants; ++t) {
        Ciphertext inner;
        bool inner_set = false;
        for (std::size_t b = 0; b < g; ++b) {
            std::size_t d = t * g + b;
            if (d >= n)
                break;
            auto addTerm = [&](const Ciphertext &src,
                               const std::vector<std::vector<Complex>>
                                   &mat) {
                auto diag = rotateVec(diagonalOf(mat, d),
                                      (n - t * g % n) % n);
                if (isNegligible(diag))
                    return;
                auto pt = eval_.encode(diag, pt_scale, level);
                auto term = eval_.multiplyPlain(src, pt);
                if (inner_set) {
                    inner = eval_.add(inner, term);
                } else {
                    inner = std::move(term);
                    inner_set = true;
                }
            };
            addTerm(r1[b], m1);
            if (ct2)
                addTerm(r2[b], m2);
        }
        if (!inner_set)
            continue;
        Ciphertext shifted =
            t == 0 ? std::move(inner)
                   : eval_.rotate(inner,
                                  static_cast<std::ptrdiff_t>(t * g),
                                  keys.rotations.at(
                                      static_cast<std::ptrdiff_t>(t * g)));
        if (acc_set) {
            acc = eval_.add(acc, shifted);
        } else {
            acc = std::move(shifted);
            acc_set = true;
        }
    }
    if (!acc_set)
        throw std::logic_error("linear transform of zero matrix");
    eval_.rescaleInPlace(acc);
    return acc;
}

Ciphertext
Bootstrapper::coeffToSlot(const Ciphertext &ct,
                          const BootstrapKeys &keys) const
{
    // SubSum: project onto the sparse subring (doubling trick). The
    // replication factor R is folded into the CtS matrices.
    Ciphertext acc = ct;
    std::size_t replicas = ctx_->params().degree / 2 / n_sparse_;
    for (std::size_t r = 1; r < replicas; r <<= 1) {
        auto steps = static_cast<std::ptrdiff_t>(r * n_sparse_);
        acc = eval_.add(acc, eval_.rotate(acc, steps,
                                          keys.rotations.at(steps)));
    }
    Ciphertext conj_ct = eval_.conjugate(acc, keys.conj);
    return linearTransform(acc, mat_cts_b_, &conj_ct, mat_cts_c_, keys);
}

std::pair<Ciphertext, Ciphertext>
Bootstrapper::splitReIm(const Ciphertext &ct,
                        const BootstrapKeys &keys) const
{
    Ciphertext conj_ct = eval_.conjugate(ct, keys.conj);
    Ciphertext re = eval_.add(ct, conj_ct);
    // im = i * (conj(p) - p): multiplying by i is the exact monomial
    // X^{N/2} — no level or scale cost.
    Ciphertext im = eval_.multiplyByMonomial(
        eval_.sub(conj_ct, ct), ctx_->degree() / 2);
    return {std::move(re), std::move(im)};
}

Ciphertext
Bootstrapper::chebyshevAndDoubleAngle(const Ciphertext &y,
                                      const BootstrapKeys &keys) const
{
    auto d0 = static_cast<std::size_t>(config_.cheb_degree);
    std::vector<Ciphertext> t_poly(d0 + 1);
    std::vector<bool> have(d0 + 1, false);
    t_poly[1] = y;
    have[1] = true;

    // Aligned binary ops: drop the higher operand to the lower level;
    // scales track Delta with negligible drift.
    auto aligned = [&](Ciphertext a, Ciphertext b) {
        std::size_t lvl = std::min(a.level(), b.level());
        eval_.dropToLevelInPlace(a, lvl);
        eval_.dropToLevelInPlace(b, lvl);
        eval_.setScaleInPlace(b, a.scale);
        return std::pair{std::move(a), std::move(b)};
    };
    auto mulAligned = [&](const Ciphertext &a, const Ciphertext &b) {
        auto [x, z] = aligned(a, b);
        auto prod = eval_.multiply(x, z, keys.relin);
        eval_.rescaleInPlace(prod);
        return prod;
    };
    auto subConst = [&](Ciphertext ct, double v) {
        auto pt = eval_.encodeConstant(v, ct.scale, ct.level());
        return eval_.subPlain(ct, pt);
    };

    // Build T_k bottom-up: T_{2a} = 2 T_a^2 - 1,
    // T_{2a+1} = 2 T_{a+1} T_a - T_1.
    std::function<const Ciphertext &(std::size_t)> get =
        [&](std::size_t k) -> const Ciphertext & {
        if (have[k])
            return t_poly[k];
        if (k % 2 == 0) {
            std::size_t a = k / 2;
            auto sq = mulAligned(get(a), get(a));
            t_poly[k] = subConst(eval_.add(sq, sq), 1.0);
        } else {
            std::size_t a = (k + 1) / 2;
            auto prod = mulAligned(get(a), get(a - 1));
            auto dbl = eval_.add(prod, prod);
            auto [x, t1] = aligned(dbl, t_poly[1]);
            t_poly[k] = eval_.sub(x, t1);
        }
        have[k] = true;
        return t_poly[k];
    };

    // Combine: sum_j c_j T_j(y).
    Ciphertext acc;
    bool acc_set = false;
    std::size_t min_level = y.level();
    for (std::size_t j = 1; j <= d0; ++j) {
        if (std::abs(cheb_coeffs_[j]) < 1e-13)
            continue;
        min_level = std::min(min_level, get(j).level());
    }
    for (std::size_t j = 1; j <= d0; ++j) {
        if (std::abs(cheb_coeffs_[j]) < 1e-13)
            continue;
        auto term = eval_.multiplyConstant(get(j), cheb_coeffs_[j]);
        eval_.rescaleInPlace(term);
        eval_.dropToLevelInPlace(term, min_level - 1);
        if (acc_set) {
            eval_.setScaleInPlace(term, acc.scale);
            acc = eval_.add(acc, term);
        } else {
            acc = std::move(term);
            acc_set = true;
        }
    }
    // cheb_coeffs_[0] is computed with the 1/M factor, so it is the
    // true constant term and enters unhalved.
    acc = eval_.addPlain(
        acc, eval_.encodeConstant(cheb_coeffs_[0], acc.scale,
                                  acc.level()));

    // Double-angle ladder: c <- 2c^2 - 1 lifts cos(theta/2^r) to
    // cos(theta); the result is sin(2 pi K y).
    for (int i = 0; i < config_.double_angles; ++i) {
        auto sq = mulAligned(acc, acc);
        acc = subConst(eval_.add(sq, sq), 1.0);
    }
    return acc;
}

Ciphertext
Bootstrapper::evalMod(const Ciphertext &ct,
                      const BootstrapKeys &keys) const
{
    return chebyshevAndDoubleAngle(ct, keys);
}

Ciphertext
Bootstrapper::slotToCoeff(const Ciphertext &re, const Ciphertext &im,
                          const BootstrapKeys &keys) const
{
    auto [a, b] = std::pair{re, im};
    std::size_t lvl = std::min(a.level(), b.level());
    eval_.dropToLevelInPlace(a, lvl);
    eval_.dropToLevelInPlace(b, lvl);
    eval_.setScaleInPlace(b, a.scale);
    return linearTransform(a, mat_stc_d_, &b, mat_stc_f_, keys);
}

Ciphertext
Bootstrapper::bootstrap(const Ciphertext &ct,
                        const BootstrapKeys &keys) const
{
    Ciphertext raised = modRaise(ct);
    Ciphertext packed = coeffToSlot(raised, keys);
    auto [re, im] = splitReIm(packed, keys);
    Ciphertext mod_re = evalMod(re, keys);
    Ciphertext mod_im = evalMod(im, keys);
    Ciphertext out = slotToCoeff(mod_re, mod_im, keys);
    // The scale is Delta by construction of the folded constants.
    eval_.setScaleInPlace(out, ctx_->params().scale);
    return out;
}

} // namespace fast::ckks
