/**
 * @file
 * Implementation of the shared CKKS context.
 */
#include "ckks/context.hpp"

#include <stdexcept>

namespace fast::ckks {

CkksContext::CkksContext(CkksParams params)
    : params_(std::move(params)), encoder_(params_.degree)
{
    params_.validate();
    ntt_tables_ = math::NttTableSet(params_.degree, keyModuli());
}

std::vector<u64>
CkksContext::qModuli(std::size_t ell) const
{
    if (ell >= params_.q_chain.size())
        throw std::out_of_range("level exceeds modulus chain");
    return {params_.q_chain.begin(),
            params_.q_chain.begin() + static_cast<std::ptrdiff_t>(ell + 1)};
}

std::vector<u64>
CkksContext::extendedModuli(std::size_t ell) const
{
    auto m = qModuli(ell);
    m.insert(m.end(), params_.p_chain.begin(), params_.p_chain.end());
    return m;
}

std::vector<u64>
CkksContext::keyModuli() const
{
    return extendedModuli(params_.maxLevel());
}

u64
CkksContext::specialProductMod(u64 m) const
{
    u64 r = 1 % m;
    for (u64 p : params_.p_chain)
        r = math::mulMod(r, p % m, m);
    return r;
}

const math::BaseConverter &
CkksContext::converter(const std::vector<u64> &from,
                       const std::vector<u64> &to) const
{
    std::lock_guard<std::mutex> lock(cache_mutex_);
    auto key = std::make_pair(from, to);
    auto it = conv_cache_.find(key);
    if (it == conv_cache_.end()) {
        it = conv_cache_
                 .emplace(key, std::make_unique<math::BaseConverter>(
                                   math::RnsBasis(from),
                                   math::RnsBasis(to)))
                 .first;
    }
    return *it->second;
}

const math::RnsBasis &
CkksContext::basis(const std::vector<u64> &moduli) const
{
    std::lock_guard<std::mutex> lock(cache_mutex_);
    auto it = basis_cache_.find(moduli);
    if (it == basis_cache_.end()) {
        it = basis_cache_
                 .emplace(moduli,
                          std::make_unique<math::RnsBasis>(moduli))
                 .first;
    }
    return *it->second;
}

} // namespace fast::ckks
