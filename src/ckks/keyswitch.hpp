/**
 * @file
 * Key-switching: hybrid (ModUp/KeyMult/ModDown) and KLSS-style gadget
 * decomposition, plus the shared decomposition entry point that makes
 * hoisting possible.
 *
 * Both methods implement the same contract (Fig. 1 of the paper):
 * given a polynomial d under modulus Q_ell and an evaluation key for
 * s' -> s, produce (delta0, delta1) with delta0 + delta1*s ~ d*s'.
 *
 *  - Hybrid: split d's limbs into beta groups of alpha, ModUp each
 *    group to the extended basis (INTT + BConv + NTT), multiply with
 *    the per-group key parts, ModDown by the special product P.
 *  - KLSS/gadget: INTT d, CRT-compose each coefficient, split into
 *    beta~ digits of 2^v, re-embed each digit over the extended basis
 *    (NTT), inner-product with the per-digit key parts, ModDown.
 *    The digit-times-key products are small enough to be evaluated
 *    exactly over the auxiliary 60-bit basis R_T in hardware; here we
 *    compute them over the extended basis, which is mathematically
 *    identical (see DESIGN.md and the RnsExactness tests).
 *
 * Decomposition commutes with Galois automorphisms, so callers may
 * decompose once and reuse the digits across many rotations — the
 * hoisting technique (Sec. 2.2.3).
 */
#ifndef FAST_CKKS_KEYSWITCH_HPP
#define FAST_CKKS_KEYSWITCH_HPP

#include <memory>
#include <vector>

#include "ckks/context.hpp"
#include "ckks/keys.hpp"

namespace fast::ckks {

/** The additive result of a key switch, over the Q_ell basis. */
struct KeySwitchDelta {
    RnsPoly d0;
    RnsPoly d1;
};

/**
 * Stateless key-switching engine bound to a context.
 */
class KeySwitcher
{
  public:
    explicit KeySwitcher(std::shared_ptr<const CkksContext> ctx);

    /**
     * Decompose @p input (eval form, basis q_0..q_ell) into digit
     * polynomials over the extended basis (q_0..q_ell + specials),
     * eval form. For hybrid this is ModUp of each limb group; for
     * KLSS it is the base-2^v gadget decomposition.
     */
    std::vector<RnsPoly> decompose(const RnsPoly &input,
                                   KeySwitchMethod method) const;

    /**
     * Inner product of digits with the key parts followed by ModDown.
     * @p digits must come from decompose() with the matching method
     * (possibly automorphed for hoisted rotations).
     */
    KeySwitchDelta keyMultModDown(const std::vector<RnsPoly> &digits,
                                  const EvalKey &key) const;

    /** decompose + keyMultModDown in one call. */
    KeySwitchDelta apply(const RnsPoly &input, const EvalKey &key) const;

    /**
     * ModDown: divide an extended-basis polynomial by the special
     * product P and return it on the q-basis (both eval form).
     */
    RnsPoly modDown(const RnsPoly &extended) const;

    /**
     * Restrict an evk part (stored over q_0..q_L + specials) to the
     * extended basis of a level with @p q_limbs q-primes.
     */
    RnsPoly restrictKeyPoly(const RnsPoly &key_poly,
                            std::size_t q_limbs) const;

    const CkksContext &context() const { return *ctx_; }

  private:
    std::vector<RnsPoly> modUpHybrid(const RnsPoly &input) const;
    std::vector<RnsPoly> decomposeGadget(const RnsPoly &input) const;

    std::shared_ptr<const CkksContext> ctx_;
};

} // namespace fast::ckks

#endif // FAST_CKKS_KEYSWITCH_HPP
