/**
 * @file
 * Shared CKKS context: parameters, encoder, bases, and cached base
 * converters.
 */
#ifndef FAST_CKKS_CONTEXT_HPP
#define FAST_CKKS_CONTEXT_HPP

#include <map>
#include <memory>
#include <mutex>
#include <vector>

#include "ckks/encoder.hpp"
#include "ckks/params.hpp"
#include "math/ntt.hpp"
#include "math/rns.hpp"

namespace fast::ckks {

/**
 * Immutable per-parameter-set state shared by the encryptor,
 * evaluator, and key-switching engines.
 */
class CkksContext
{
  public:
    explicit CkksContext(CkksParams params);

    const CkksParams &params() const { return params_; }
    const CkksEncoder &encoder() const { return encoder_; }
    std::size_t degree() const { return params_.degree; }

    /** Moduli q_0..q_ell of a level-ell ciphertext. */
    std::vector<u64> qModuli(std::size_t ell) const;

    /** Moduli q_0..q_ell followed by the special primes. */
    std::vector<u64> extendedModuli(std::size_t ell) const;

    /** Moduli of the full key basis: q_0..q_L + specials. */
    std::vector<u64> keyModuli() const;

    /** Product of the special primes mod @p m. */
    u64 specialProductMod(u64 m) const;

    /**
     * Cached BaseConverter between two bases (built on first use;
     * thread-safe).
     */
    const math::BaseConverter &converter(
        const std::vector<u64> &from, const std::vector<u64> &to) const;

    /** Cached RnsBasis for an arbitrary modulus list. */
    const math::RnsBasis &basis(const std::vector<u64> &moduli) const;

    /**
     * Pre-built NTT tables for every key-basis modulus (q_0..q_L and
     * the specials), indexed by limb position. Hot kernels index this
     * directly instead of probing the global cache map per call.
     */
    const math::NttTableSet &nttTables() const { return ntt_tables_; }

  private:
    CkksParams params_;
    CkksEncoder encoder_;
    math::NttTableSet ntt_tables_;

    mutable std::mutex cache_mutex_;
    mutable std::map<std::pair<std::vector<u64>, std::vector<u64>>,
                     std::unique_ptr<math::BaseConverter>> conv_cache_;
    mutable std::map<std::vector<u64>,
                     std::unique_ptr<math::RnsBasis>> basis_cache_;
};

} // namespace fast::ckks

#endif // FAST_CKKS_CONTEXT_HPP
