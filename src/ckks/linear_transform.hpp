/**
 * @file
 * Homomorphic linear transforms (matrix-vector products on slots).
 *
 * The workhorse of the paper's linear operations (Sec. 2.2.1) and of
 * CoeffToSlot/SlotToCoeff: out_slots = M * in_slots, computed as a
 * sum of diagonal plaintext multiplications over rotated copies of
 * the ciphertext, organized baby-step/giant-step so only
 * O(sqrt(n)) rotations are needed — with the baby rotations hoisted
 * (one decomposition shared across the group, Sec. 2.2.3).
 */
#ifndef FAST_CKKS_LINEAR_TRANSFORM_HPP
#define FAST_CKKS_LINEAR_TRANSFORM_HPP

#include <map>
#include <vector>

#include "ckks/evaluator.hpp"

namespace fast::ckks {

/**
 * A precompiled n x n slot-space matrix, indexed [out][in], where n
 * must divide the ciphertext's sparse slot count.
 */
class LinearTransform
{
  public:
    /** Compile a dense matrix; zero diagonals are skipped. */
    LinearTransform(std::vector<std::vector<Complex>> matrix,
                    std::size_t baby_steps = 0);

    std::size_t dimension() const { return n_; }
    std::size_t babySteps() const { return baby_; }
    std::size_t giantSteps() const { return (n_ + baby_ - 1) / baby_; }

    /** Rotation steps required (give these to the key generator). */
    std::vector<std::ptrdiff_t> requiredRotations() const;

    /**
     * Apply homomorphically; consumes one level. @p rotation_keys
     * must cover requiredRotations() for the chosen method.
     */
    Ciphertext apply(const CkksEvaluator &eval, const Ciphertext &ct,
                     const std::map<std::ptrdiff_t, EvalKey> &keys,
                     KeySwitchMethod method = KeySwitchMethod::hybrid,
                     bool hoist_babies = true) const;

    /** Plaintext reference: M * v (for validation). */
    std::vector<Complex> applyPlain(
        const std::vector<Complex> &v) const;

  private:
    std::size_t n_;
    std::size_t baby_;
    std::vector<std::vector<Complex>> matrix_;  ///< [out][in]
};

} // namespace fast::ckks

#endif // FAST_CKKS_LINEAR_TRANSFORM_HPP
