/**
 * @file
 * CKKS bootstrapping: ModRaise, CoeffToSlot, EvalMod, SlotToCoeff
 * (Sec. 6.2 of the FAST paper, following the fully-packed method of
 * SHARP/ARK at test scale).
 *
 * The pipeline is the dominant workload of every FAST benchmark and
 * the place where the paper applies hoisting (in the CoeffToSlot /
 * SlotToCoeff BSGS linear transforms) and mixes key-switching methods
 * per stage. Each stage is exposed individually so tests can validate
 * them in isolation, and the key-switch method of every stage is
 * configurable — the hook Aether uses to realize its per-level method
 * selection.
 */
#ifndef FAST_CKKS_BOOTSTRAP_HPP
#define FAST_CKKS_BOOTSTRAP_HPP

#include <map>
#include <memory>
#include <vector>

#include "ckks/evaluator.hpp"

namespace fast::ckks {

/** Tunables for the bootstrapping pipeline. */
struct BootstrapConfig {
    /** |I| bound for the ModRaise overflow (needs a sparse secret). */
    int range_k = 16;
    /** Chebyshev interpolation degree for the scaled cosine. */
    int cheb_degree = 31;
    /** Double-angle iterations after the Chebyshev kernel. */
    int double_angles = 3;
    /** Key-switch method for the linear-transform rotations. */
    KeySwitchMethod lt_method = KeySwitchMethod::hybrid;
    /** Key-switch method for EvalMod multiplications. */
    KeySwitchMethod mod_method = KeySwitchMethod::hybrid;
    /** BSGS baby-step count (0 = ceil(sqrt(n))). */
    std::size_t baby_steps = 0;
    /** Use hoisting for the BSGS baby rotations. */
    bool use_hoisting = true;
};

/** The key bundle bootstrapping needs. */
struct BootstrapKeys {
    EvalKey relin;
    EvalKey conj;
    std::map<std::ptrdiff_t, EvalKey> rotations;
};

/**
 * Bootstrapper for sparse-packed ciphertexts (params.slots slots).
 */
class Bootstrapper
{
  public:
    Bootstrapper(std::shared_ptr<const CkksContext> ctx,
                 BootstrapConfig config);

    const BootstrapConfig &config() const { return config_; }

    /** Rotation steps required by the BSGS transforms. */
    std::vector<std::ptrdiff_t> requiredRotations() const;

    /** Generate the full key bundle. */
    BootstrapKeys makeKeys(const KeyGenerator &keygen) const;

    /**
     * Refresh a level-0 (or low-level) ciphertext back to a high
     * level. The output level is maxLevel minus the pipeline depth.
     */
    Ciphertext bootstrap(const Ciphertext &ct,
                         const BootstrapKeys &keys) const;

    /** @name Individual stages (public for testing and tracing). */
    ///@{
    /** Extend a low-level ciphertext's residues to the full chain. */
    Ciphertext modRaise(const Ciphertext &ct) const;

    /**
     * Homomorphic decoding: output slots hold the packed reduced
     * coefficients y_t = (Delta*w_t/q0 + I_t)/K (real part at t,
     * imaginary part carrying t+n).
     */
    Ciphertext coeffToSlot(const Ciphertext &ct,
                           const BootstrapKeys &keys) const;

    /** Split packed slots into two real-valued ciphertexts. */
    std::pair<Ciphertext, Ciphertext> splitReIm(
        const Ciphertext &ct, const BootstrapKeys &keys) const;

    /** Approximate x - round(x) removal: sin(2*pi*K*y) via Chebyshev
     *  + double angles. Input and output are real-valued slots. */
    Ciphertext evalMod(const Ciphertext &ct,
                       const BootstrapKeys &keys) const;

    /** Homomorphic re-encoding of the two coefficient halves. */
    Ciphertext slotToCoeff(const Ciphertext &re, const Ciphertext &im,
                           const BootstrapKeys &keys) const;
    ///@}

    /**
     * Generic BSGS linear transform on the slot vector:
     * out = M1 * slots(ct1) + M2 * slots(ct2), matrices given as
     * [out][in] over the sparse slot dimension. ct2 may be null.
     * Consumes one level. Baby rotations are hoisted when enabled.
     */
    Ciphertext linearTransform(
        const Ciphertext &ct1,
        const std::vector<std::vector<Complex>> &m1,
        const Ciphertext *ct2,
        const std::vector<std::vector<Complex>> &m2,
        const BootstrapKeys &keys) const;

    /** Total multiplicative depth of the pipeline. */
    std::size_t depth() const;

  private:
    Ciphertext chebyshevAndDoubleAngle(const Ciphertext &y,
                                       const BootstrapKeys &keys) const;
    Ciphertext rotateMaybeHoisted(const HoistedRotator *hoisted,
                                  const Ciphertext &ct,
                                  std::ptrdiff_t steps,
                                  const BootstrapKeys &keys) const;

    std::shared_ptr<const CkksContext> ctx_;
    CkksEvaluator eval_;
    BootstrapConfig config_;
    std::size_t n_sparse_;              ///< sparse slot count
    std::vector<Complex> psi_pows_;     ///< psi'^k, psi' of order 4n
    std::vector<std::size_t> rot_group_;  ///< 5^j mod 4n
    std::vector<std::vector<Complex>> mat_cts_b_;  ///< CtS on ct
    std::vector<std::vector<Complex>> mat_cts_c_;  ///< CtS on conj(ct)
    std::vector<std::vector<Complex>> mat_stc_d_;  ///< StC on re
    std::vector<std::vector<Complex>> mat_stc_f_;  ///< StC on im
    std::vector<double> cheb_coeffs_;
};

} // namespace fast::ckks

#endif // FAST_CKKS_BOOTSTRAP_HPP
